package timing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testTech() AlphaPower {
	return AlphaPower{K: 157.0, Vth: 0.35, Alpha: 1.3}
}

func testCircuit() *Circuit {
	return &Circuit{
		Tech:          testTech(),
		EpsPS:         15,
		JitterSigmaPS: 4,
		Paths: []Path{
			{Name: "imul", SrcDepth: 0.15, PropDepth: 0.85, SetupPS: 20},
			{Name: "alu", SrcDepth: 0.15, PropDepth: 0.45, SetupPS: 20},
			{Name: "control", SrcDepth: 0.15, PropDepth: 0.95, SetupPS: 20, Control: true},
		},
	}
}

func TestDelayMonotoneDecreasingInVoltage(t *testing.T) {
	tech := testTech()
	prev := math.Inf(1)
	for v := 0.40; v <= 1.30; v += 0.01 {
		d := tech.Delay(v)
		if d >= prev {
			t.Fatalf("delay not strictly decreasing at V=%.2f: %v >= %v", v, d, prev)
		}
		prev = d
	}
}

func TestDelayBelowThresholdInfinite(t *testing.T) {
	tech := testTech()
	if !math.IsInf(tech.Delay(tech.Vth), 1) {
		t.Fatal("delay at Vth not +Inf")
	}
	if !math.IsInf(tech.Delay(0.1), 1) {
		t.Fatal("delay below Vth not +Inf")
	}
}

func TestTechValidate(t *testing.T) {
	good := testTech()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid tech rejected: %v", err)
	}
	bad := []AlphaPower{
		{K: 0, Vth: 0.35, Alpha: 1.3},
		{K: -1, Vth: 0.35, Alpha: 1.3},
		{K: 100, Vth: 0, Alpha: 1.3},
		{K: 100, Vth: 2.0, Alpha: 1.3},
		{K: 100, Vth: 0.35, Alpha: 0.5},
		{K: 100, Vth: 0.35, Alpha: 2.5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad tech %d accepted", i)
		}
	}
}

func TestAnalyzeEquationOne(t *testing.T) {
	c := testCircuit()
	p := c.Paths[0]
	a := c.Analyze(p, 3.2, 1.12)
	wantTclk := 1000.0 / 3.2
	if math.Abs(a.TclkPS-wantTclk) > 1e-9 {
		t.Fatalf("Tclk=%v want %v", a.TclkPS, wantTclk)
	}
	wantArrival := p.Depth() * c.Tech.Delay(1.12)
	if math.Abs(a.ArrivalPS-wantArrival) > 1e-9 {
		t.Fatalf("arrival=%v want %v", a.ArrivalPS, wantArrival)
	}
	wantRequired := wantTclk - p.SetupPS - c.EpsPS
	if math.Abs(a.RequiredPS-wantRequired) > 1e-9 {
		t.Fatalf("required=%v want %v", a.RequiredPS, wantRequired)
	}
	if math.Abs(a.SlackPS-(wantRequired-wantArrival)) > 1e-9 {
		t.Fatalf("slack=%v", a.SlackPS)
	}
	if a.Safe() != (a.SlackPS >= 0) {
		t.Fatal("Safe() inconsistent with slack sign")
	}
}

func TestSlackMonotonicity(t *testing.T) {
	c := testCircuit()
	p := c.Paths[0]
	// Slack increases with voltage at fixed frequency.
	prev := math.Inf(-1)
	for v := 0.45; v <= 1.3; v += 0.05 {
		s := c.Analyze(p, 2.0, v).SlackPS
		if s <= prev {
			t.Fatalf("slack not increasing in V at V=%.2f", v)
		}
		prev = s
	}
	// Slack decreases with frequency at fixed voltage.
	prev = math.Inf(1)
	for f := 0.8; f <= 4.0; f += 0.2 {
		s := c.Analyze(p, f, 1.1).SlackPS
		if s >= prev {
			t.Fatalf("slack not decreasing in f at f=%.1f", f)
		}
		prev = s
	}
}

func TestWorstSlackPicksDeepestPath(t *testing.T) {
	c := testCircuit()
	a, err := c.WorstSlack(3.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Path.Name != "control" {
		t.Fatalf("worst path = %q, want control (deepest)", a.Path.Name)
	}
	_, err = (&Circuit{Tech: testTech()}).WorstSlack(3.0, 1.0)
	if err == nil {
		t.Fatal("WorstSlack on empty circuit: no error")
	}
}

func TestFaultProbabilityBounds(t *testing.T) {
	c := testCircuit()
	p := c.Paths[0]
	// Deep positive slack: probability ~0.
	a := c.Analyze(p, 1.0, 1.2)
	if pr := c.FaultProbability(a); pr > 1e-6 {
		t.Fatalf("fault prob at large slack = %v", pr)
	}
	// Deep negative slack: probability ~1.
	a = c.Analyze(p, 4.0, 0.45)
	if pr := c.FaultProbability(a); pr < 1-1e-6 {
		t.Fatalf("fault prob at deeply negative slack = %v", pr)
	}
	// Zero slack: exactly 0.5 under the Gaussian model.
	a.SlackPS = 0
	if pr := c.FaultProbability(a); math.Abs(pr-0.5) > 1e-12 {
		t.Fatalf("fault prob at zero slack = %v, want 0.5", pr)
	}
}

func TestFaultProbabilityHardThreshold(t *testing.T) {
	c := testCircuit()
	c.JitterSigmaPS = 0
	a := Analysis{SlackPS: 0.001}
	if c.FaultProbability(a) != 0 {
		t.Fatal("positive slack faulted under hard threshold")
	}
	a.SlackPS = -0.001
	if c.FaultProbability(a) != 1 {
		t.Fatal("negative slack did not fault under hard threshold")
	}
}

func TestMinVoltageBisection(t *testing.T) {
	c := testCircuit()
	p := c.Paths[0]
	vmin, err := c.MinVoltage(p, 3.2, 1.3, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Analyze(p, 3.2, vmin).Safe() {
		t.Fatal("MinVoltage result is unsafe")
	}
	if c.Analyze(p, 3.2, vmin-0.002).Safe() {
		t.Fatal("MinVoltage not tight: 2mV below still safe")
	}
	// Lower frequency needs lower minimum voltage.
	vminLow, err := c.MinVoltage(p, 1.0, 1.3, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if vminLow >= vmin {
		t.Fatalf("min voltage at 1GHz (%v) not below 3.2GHz (%v)", vminLow, vmin)
	}
}

func TestMinVoltageInfeasible(t *testing.T) {
	c := testCircuit()
	if _, err := c.MinVoltage(c.Paths[0], 50.0, 1.3, 0); err == nil {
		t.Fatal("expected infeasibility error at 50 GHz")
	}
}

func TestMaxFrequencyBisection(t *testing.T) {
	c := testCircuit()
	p := c.Paths[0]
	fmax, err := c.MaxFrequency(p, 1.12, 10, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Analyze(p, fmax, 1.12).Safe() {
		t.Fatal("MaxFrequency result is unsafe")
	}
	if c.Analyze(p, fmax+0.01, 1.12).Safe() {
		t.Fatal("MaxFrequency not tight")
	}
	// A voltage safe up to fMax cap returns the cap.
	fcap, err := c.MaxFrequency(p, 1.3, 0.5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if fcap != 0.5 {
		t.Fatalf("capped MaxFrequency=%v want 0.5", fcap)
	}
}

func TestCircuitValidate(t *testing.T) {
	c := testCircuit()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	dup := testCircuit()
	dup.Paths = append(dup.Paths, Path{Name: "imul", SrcDepth: 1, PropDepth: 1})
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate path accepted")
	}
	anon := testCircuit()
	anon.Paths[0].Name = ""
	if err := anon.Validate(); err == nil {
		t.Fatal("empty path name accepted")
	}
	neg := testCircuit()
	neg.EpsPS = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative eps accepted")
	}
	flat := testCircuit()
	flat.Paths[1].SrcDepth, flat.Paths[1].PropDepth = 0, 0
	if err := flat.Validate(); err == nil {
		t.Fatal("zero-depth path accepted")
	}
	badSetup := testCircuit()
	badSetup.Paths[2].SetupPS = -5
	if err := badSetup.Validate(); err == nil {
		t.Fatal("negative setup accepted")
	}
}

func TestPathByName(t *testing.T) {
	c := testCircuit()
	p, ok := c.PathByName("alu")
	if !ok || p.Name != "alu" {
		t.Fatal("PathByName failed for existing path")
	}
	if _, ok := c.PathByName("nope"); ok {
		t.Fatal("PathByName found nonexistent path")
	}
}

// Property: fault probability is monotone nonincreasing in voltage — more
// supply can never make a path less reliable in this model.
func TestQuickFaultProbMonotoneInVoltage(t *testing.T) {
	c := testCircuit()
	p := c.Paths[0]
	f := func(rawF, rawV uint16) bool {
		freq := 0.8 + float64(rawF%33)/10.0 // 0.8..4.0 GHz
		v1 := 0.40 + float64(rawV%80)/100.0 // 0.40..1.19
		v2 := v1 + 0.05
		p1 := c.FaultProbability(c.Analyze(p, freq, v1))
		p2 := c.FaultProbability(c.Analyze(p, freq, v2))
		return p2 <= p1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. 1 ordering — for a fixed operating point, a strictly deeper
// path never has more slack.
func TestQuickDeeperPathNoMoreSlack(t *testing.T) {
	c := testCircuit()
	f := func(d1, d2 uint8, rawF, rawV uint16) bool {
		depthA := 0.1 + float64(d1)/100.0
		depthB := depthA + 0.1 + float64(d2)/100.0
		freq := 0.8 + float64(rawF%33)/10.0
		v := 0.45 + float64(rawV%75)/100.0
		pa := Path{Name: "a", PropDepth: depthA, SetupPS: 20}
		pb := Path{Name: "b", PropDepth: depthB, SetupPS: 20}
		return c.Analyze(pb, freq, v).SlackPS <= c.Analyze(pa, freq, v).SlackPS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	c := testCircuit()
	p := c.Paths[0]
	for i := 0; i < b.N; i++ {
		_ = c.Analyze(p, 3.2, 1.0)
	}
}

func BenchmarkMinVoltage(b *testing.B) {
	c := testCircuit()
	p := c.Paths[0]
	for i := 0; i < b.N; i++ {
		_, _ = c.MinVoltage(p, 3.2, 1.3, 1e-4)
	}
}

// Property: MinVoltage and MaxFrequency are dual — the minimum voltage for
// a frequency supports (almost exactly) that frequency as its maximum.
func TestQuickMinVoltageMaxFrequencyDuality(t *testing.T) {
	c := testCircuit()
	p := c.Paths[0]
	f := func(raw uint8) bool {
		freq := 1.0 + float64(raw%25)*0.1 // 1.0..3.4 GHz
		vmin, err := c.MinVoltage(p, freq, 1.3, 1e-6)
		if err != nil {
			return false
		}
		fmax, err := c.MaxFrequency(p, vmin, 10, 1e-5)
		if err != nil {
			return false
		}
		return fmax >= freq-1e-3 && fmax <= freq+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
