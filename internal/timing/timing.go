// Package timing implements the sequential-circuit timing model of the
// paper's Section 3 (Eq. 1-3).
//
// The model is the launch/capture pair of Fig. 1: a flip-flop F1 drives a
// combinational cone whose output must be stable at flip-flop F2 before the
// capture clock edge, allowing for F2's setup time and the worst-case clock
// uncertainty T_eps. The safety condition is Eq. 1:
//
//	T_src + T_prop <= T_clk - T_setup - T_eps
//
// Undervolting slows transistor switching, inflating T_src and T_prop; the
// clock-side terms depend only on frequency. A path whose slack
// (RHS - LHS) goes negative latches metastable/wrong data — the root cause
// of every DVFS fault attack the paper cites.
//
// Gate delay follows the alpha-power law (Sakurai-Newton):
//
//	d(V) = K * V / (V - Vth)^alpha
//
// which captures the super-linear delay blow-up as supply approaches the
// threshold voltage. All delays are in picoseconds, voltages in volts.
package timing

import (
	"errors"
	"fmt"
	"math"
)

// AlphaPower describes a technology's gate-delay response to supply voltage.
type AlphaPower struct {
	// K scales delay; calibrated per CPU model so the critical path meets
	// timing with the documented margin at nominal (frequency, voltage).
	K float64
	// Vth is the effective transistor threshold voltage in volts.
	Vth float64
	// Alpha is the velocity-saturation exponent (~1.2-1.6 for modern nodes).
	Alpha float64
}

// ErrBelowThreshold is returned when the supply voltage does not exceed the
// threshold voltage: transistors no longer switch and delay is unbounded.
var ErrBelowThreshold = errors.New("timing: supply voltage at or below threshold")

// Delay returns the unit gate delay in picoseconds at supply voltage v.
// For v <= Vth the device cannot switch; Delay returns +Inf.
func (a AlphaPower) Delay(v float64) float64 {
	if v <= a.Vth {
		return math.Inf(1)
	}
	return a.K * v / math.Pow(v-a.Vth, a.Alpha)
}

// Validate checks that the technology parameters are physical.
func (a AlphaPower) Validate() error {
	if a.K <= 0 {
		return fmt.Errorf("timing: K must be positive, got %v", a.K)
	}
	if a.Vth <= 0 || a.Vth >= 1.5 {
		return fmt.Errorf("timing: Vth out of range (0, 1.5): %v", a.Vth)
	}
	if a.Alpha < 1 || a.Alpha > 2 {
		return fmt.Errorf("timing: Alpha out of range [1, 2]: %v", a.Alpha)
	}
	return nil
}

// Path is one launch-to-capture timing path: F1 -> combinational cone -> F2.
type Path struct {
	// Name identifies the path (e.g. "imul.stage2", "agu", "control").
	Name string
	// SrcDepth is the depth (in unit gates) contributing to T_src, the
	// clock-to-Q resolution of the launching flip-flop F1.
	SrcDepth float64
	// PropDepth is the depth of the combinational cone (T_prop).
	PropDepth float64
	// SetupPS is T_setup of the capturing flip-flop F2, in picoseconds.
	// Setup time is a property of the sequential element, independent of
	// the core voltage plane in this model (the paper treats it as part of
	// the frequency-only side of Eq. 1).
	SetupPS float64
	// Control marks architectural control paths; a violation here does not
	// merely corrupt a data result but derails the pipeline (machine check
	// / system crash in the characterization sweeps).
	Control bool
}

// Depth returns the total gate depth of the path.
func (p Path) Depth() float64 { return p.SrcDepth + p.PropDepth }

// delayCacheBits sizes the per-circuit voltage→unit-delay memo. Operating
// points are quantized to the (kHz, mV) grid, so a sweep touches only a
// handful of distinct voltages per circuit; 64 direct-mapped slots make the
// alpha-power math.Pow a table lookup in the inner loop.
const (
	delayCacheBits = 6
	delayCacheSize = 1 << delayCacheBits
)

// Circuit is a set of timing paths sharing a clock and a voltage plane,
// plus the clock-uncertainty model.
//
// Analysis methods lazily build and update internal lookup caches, so a
// Circuit is NOT safe for concurrent use; hand each concurrent owner its
// own copy via Clone. Paths must not be mutated after the first analysis
// call (appending paths is detected and re-indexes).
type Circuit struct {
	Tech AlphaPower
	// EpsPS is the worst-case clock uncertainty T_eps in picoseconds
	// (skew + jitter bound). Eq. 1 budgets for the clock arriving this
	// much early.
	EpsPS float64
	// JitterSigmaPS is the standard deviation of the cycle-to-cycle jitter
	// actually realized; faults near the boundary are probabilistic, which
	// matches the empirically fuzzy fault-onset bands in Figs. 2-4.
	JitterSigmaPS float64
	Paths         []Path

	// depths caches Path.Depth() per path; byName maps path name to index
	// (first occurrence wins, matching the historical linear scan). Both are
	// rebuilt whenever their length disagrees with len(Paths). Clones share
	// them read-only.
	depths []float64
	byName map[string]int
	idxLen int
	// dcKeys/dcVals is the direct-mapped voltage→unit-delay memo, keyed by
	// the voltage's bit pattern. A zero key marks an empty slot: only
	// v = +0.0 has zero bits, and Delay(+0) is either +Inf (short-circuited
	// before the cache) or exactly the 0.0 an empty slot already holds.
	// Clones copy the arrays by value, so each owner memoizes privately.
	dcKeys [delayCacheSize]uint64
	dcVals [delayCacheSize]float64
	// fpKeys/fpVals/fpSet memoize FaultProbability per slack bit pattern
	// (sigma is fixed per circuit). The sweep revisits the same few dozen
	// quantized operating points millions of times, and erfc was the last
	// transcendental left in the inner loop.
	fpKeys [delayCacheSize]uint64
	fpVals [delayCacheSize]float64
	fpSet  [delayCacheSize]bool
}

// Clone returns a shallow copy sharing the immutable path slice and derived
// lookup tables but owning a private delay memo, so many cores can analyze
// one validated circuit without rebuilding or contending on it.
func (c *Circuit) Clone() *Circuit {
	cp := *c
	return &cp
}

// Prepare eagerly builds the derived lookup tables so that clones handed to
// concurrent owners share them read-only instead of each building its own.
func (c *Circuit) Prepare() {
	c.ensureDepths()
	c.ensureIndex()
}

func (c *Circuit) ensureDepths() {
	if len(c.depths) == len(c.Paths) {
		return
	}
	c.depths = make([]float64, len(c.Paths))
	for i := range c.Paths {
		c.depths[i] = c.Paths[i].Depth()
	}
}

func (c *Circuit) ensureIndex() {
	if c.byName != nil && c.idxLen == len(c.Paths) {
		return
	}
	c.byName = make(map[string]int, len(c.Paths))
	for i := range c.Paths {
		if _, dup := c.byName[c.Paths[i].Name]; !dup {
			c.byName[c.Paths[i].Name] = i
		}
	}
	c.idxLen = len(c.Paths)
}

// unitDelay is Tech.Delay(v) through the per-circuit memo. math.Pow is
// deterministic, so the cached value is bit-for-bit the direct formula.
func (c *Circuit) unitDelay(v float64) float64 {
	if v <= c.Tech.Vth {
		return math.Inf(1)
	}
	bits := math.Float64bits(v)
	h := (bits * 0x9E3779B97F4A7C15) >> (64 - delayCacheBits)
	if c.dcKeys[h] == bits {
		return c.dcVals[h]
	}
	d := c.Tech.Delay(v)
	c.dcKeys[h] = bits
	c.dcVals[h] = d
	return d
}

// Analysis is the static-timing result of one path at one operating point.
type Analysis struct {
	Path     Path
	FreqGHz  float64
	VoltageV float64
	// TclkPS is the clock period.
	TclkPS float64
	// ArrivalPS is T_src + T_prop (the LHS of Eq. 1).
	ArrivalPS float64
	// RequiredPS is T_clk - T_setup - T_eps (the RHS of Eq. 1).
	RequiredPS float64
	// SlackPS = RequiredPS - ArrivalPS. Negative slack = Eq. 3 violation.
	SlackPS float64
}

// Safe reports whether the path meets Eq. 1 at this operating point,
// i.e. the launching flip-flop is in the paper's "safe state".
func (a Analysis) Safe() bool { return a.SlackPS >= 0 }

// Analyze evaluates Eq. 1 for path p at the given core frequency (GHz) and
// supply voltage (V).
func (c *Circuit) Analyze(p Path, freqGHz, voltageV float64) Analysis {
	tclk := 1000.0 / freqGHz // ps
	unit := c.unitDelay(voltageV)
	arrival := p.Depth() * unit
	required := tclk - p.SetupPS - c.EpsPS
	return Analysis{
		Path:       p,
		FreqGHz:    freqGHz,
		VoltageV:   voltageV,
		TclkPS:     tclk,
		ArrivalPS:  arrival,
		RequiredPS: required,
		SlackPS:    required - arrival,
	}
}

// WorstSlack returns the minimum slack across all paths at the operating
// point, along with the analysis of the limiting path. It returns an error
// if the circuit has no paths.
//
// This is the characterizer/guard inner loop: it evaluates the unit delay
// once through the memo, scans precomputed depths, and allocates nothing.
// The arithmetic mirrors Analyze operation for operation, so the result is
// bit-for-bit the minimum of the per-path Analyze calls (strict <, first
// minimum wins, matching the historical scan).
func (c *Circuit) WorstSlack(freqGHz, voltageV float64) (Analysis, error) {
	if len(c.Paths) == 0 {
		return Analysis{}, errors.New("timing: circuit has no paths")
	}
	c.ensureDepths()
	tclk := 1000.0 / freqGHz // ps
	unit := c.unitDelay(voltageV)
	wi := 0
	var worst float64
	for i := range c.Paths {
		required := tclk - c.Paths[i].SetupPS - c.EpsPS
		slack := required - c.depths[i]*unit
		if i == 0 || slack < worst {
			worst, wi = slack, i
		}
	}
	p := c.Paths[wi]
	arrival := c.depths[wi] * unit
	required := tclk - p.SetupPS - c.EpsPS
	return Analysis{
		Path:       p,
		FreqGHz:    freqGHz,
		VoltageV:   voltageV,
		TclkPS:     tclk,
		ArrivalPS:  arrival,
		RequiredPS: required,
		SlackPS:    required - arrival,
	}, nil
}

// FaultProbability converts a path's slack into the probability that one
// traversal of the path latches a wrong value, using the Gaussian jitter
// model: the realized clock edge arrives N(0, JitterSigma) around its
// budgeted worst case, so a path with slack s faults with probability
// Phi(-s/sigma).
//
// With zero sigma the model is a hard threshold (fault iff slack < 0).
//
// Results are memoized per slack bit pattern; erfc is deterministic, so the
// cached probability is bit-for-bit the direct evaluation.
func (c *Circuit) FaultProbability(a Analysis) float64 {
	if c.JitterSigmaPS <= 0 {
		if a.SlackPS < 0 {
			return 1
		}
		return 0
	}
	bits := math.Float64bits(a.SlackPS)
	h := (bits * 0x9E3779B97F4A7C15) >> (64 - delayCacheBits)
	if c.fpSet[h] && c.fpKeys[h] == bits {
		return c.fpVals[h]
	}
	p := normalCDF(-a.SlackPS / c.JitterSigmaPS)
	c.fpKeys[h] = bits
	c.fpVals[h] = p
	c.fpSet[h] = true
	return p
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// MinVoltage numerically finds the minimum supply voltage (V) at which path
// p still meets timing at freqGHz, to within tolV volts. It returns an error
// if the path cannot meet timing even at vMax.
func (c *Circuit) MinVoltage(p Path, freqGHz, vMax, tolV float64) (float64, error) {
	if tolV <= 0 {
		tolV = 1e-4
	}
	if !c.Analyze(p, freqGHz, vMax).Safe() {
		return 0, fmt.Errorf("timing: path %q fails at %0.3f GHz even at %0.3f V", p.Name, freqGHz, vMax)
	}
	lo, hi := c.Tech.Vth, vMax // fails at lo (infinite delay), passes at hi
	for hi-lo > tolV {
		mid := (lo + hi) / 2
		if c.Analyze(p, freqGHz, mid).Safe() {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// MaxFrequency numerically finds the highest frequency (GHz) at which path p
// meets timing at voltage v, to within tolGHz.
func (c *Circuit) MaxFrequency(p Path, voltageV, fMax, tolGHz float64) (float64, error) {
	if tolGHz <= 0 {
		tolGHz = 1e-3
	}
	lo := 0.01 // trivially passes (huge period)... verify anyway
	if !c.Analyze(p, lo, voltageV).Safe() {
		return 0, fmt.Errorf("timing: path %q fails even at %0.2f GHz, V=%0.3f", p.Name, lo, voltageV)
	}
	if c.Analyze(p, fMax, voltageV).Safe() {
		return fMax, nil
	}
	hi := fMax // fails at hi
	for hi-lo > tolGHz {
		mid := (lo + hi) / 2
		if c.Analyze(p, mid, voltageV).Safe() {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Validate checks the circuit's physical consistency.
func (c *Circuit) Validate() error {
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	if c.EpsPS < 0 {
		return fmt.Errorf("timing: negative EpsPS %v", c.EpsPS)
	}
	if c.JitterSigmaPS < 0 {
		return fmt.Errorf("timing: negative JitterSigmaPS %v", c.JitterSigmaPS)
	}
	names := make(map[string]bool, len(c.Paths))
	for _, p := range c.Paths {
		if p.Name == "" {
			return errors.New("timing: path with empty name")
		}
		if names[p.Name] {
			return fmt.Errorf("timing: duplicate path name %q", p.Name)
		}
		names[p.Name] = true
		if p.Depth() <= 0 {
			return fmt.Errorf("timing: path %q has nonpositive depth", p.Name)
		}
		if p.SetupPS < 0 {
			return fmt.Errorf("timing: path %q has negative setup", p.Name)
		}
	}
	return nil
}

// PathByName returns the named path, or false. Lookups go through a lazily
// built name index (first occurrence wins, as the old linear scan did).
func (c *Circuit) PathByName(name string) (Path, bool) {
	c.ensureIndex()
	i, ok := c.byName[name]
	if !ok {
		return Path{}, false
	}
	return c.Paths[i], true
}
