package timing

import (
	"math"
	"testing"
)

// TestUnitDelayMemoBitExact sweeps supply voltages from just above Vth to
// 1.5 V and requires the memoized delay to equal the direct alpha-power
// formula bit for bit, on both the miss and the hit path.
func TestUnitDelayMemoBitExact(t *testing.T) {
	c := testCircuit()
	for i := 0; i <= 5000; i++ {
		v := c.Tech.Vth + 0.0001 + float64(i)*(1.5-c.Tech.Vth)/5000
		want := c.Tech.Delay(v)
		miss := c.unitDelay(v)
		hit := c.unitDelay(v)
		if math.Float64bits(miss) != math.Float64bits(want) {
			t.Fatalf("v=%v: memo miss %v != direct %v", v, miss, want)
		}
		if math.Float64bits(hit) != math.Float64bits(want) {
			t.Fatalf("v=%v: memo hit %v != direct %v", v, hit, want)
		}
	}
}

// TestAnalyzeMemoBitExact checks the memo through the public API: Analyze
// with the cache warm must match a fresh circuit's cold evaluation exactly.
func TestAnalyzeMemoBitExact(t *testing.T) {
	warm := testCircuit()
	p := warm.Paths[0]
	// Warm the memo with a full sweep, then compare against cold circuits.
	for i := 0; i <= 200; i++ {
		v := 0.55 + float64(i)*0.003
		warm.Analyze(p, 3.2, v)
	}
	for i := 0; i <= 200; i++ {
		v := 0.55 + float64(i)*0.003
		got := warm.Analyze(p, 3.2, v)
		want := testCircuit().Analyze(p, 3.2, v)
		if math.Float64bits(got.SlackPS) != math.Float64bits(want.SlackPS) ||
			math.Float64bits(got.ArrivalPS) != math.Float64bits(want.ArrivalPS) {
			t.Fatalf("v=%v: warm Analyze %+v != cold %+v", v, got, want)
		}
	}
}

// TestWorstSlackMatchesAnalyzeScan requires WorstSlack to be bit-for-bit the
// first minimum of the per-path Analyze results over an operating grid.
func TestWorstSlackMatchesAnalyzeScan(t *testing.T) {
	c := testCircuit()
	for _, freq := range []float64{0.8, 1.6, 2.4, 3.2, 3.6} {
		for i := 0; i <= 100; i++ {
			v := 0.45 + float64(i)*0.008
			got, err := c.WorstSlack(freq, v)
			if err != nil {
				t.Fatal(err)
			}
			want := c.Analyze(c.Paths[0], freq, v)
			for _, p := range c.Paths[1:] {
				a := c.Analyze(p, freq, v)
				if a.SlackPS < want.SlackPS {
					want = a
				}
			}
			if math.Float64bits(got.SlackPS) != math.Float64bits(want.SlackPS) {
				t.Fatalf("f=%v v=%v: WorstSlack %v != scan min %v", freq, v, got.SlackPS, want.SlackPS)
			}
			if got.Path.Name != want.Path.Name {
				t.Fatalf("f=%v v=%v: limiting path %q != %q", freq, v, got.Path.Name, want.Path.Name)
			}
			if math.Float64bits(got.ArrivalPS) != math.Float64bits(want.ArrivalPS) ||
				math.Float64bits(got.RequiredPS) != math.Float64bits(want.RequiredPS) ||
				math.Float64bits(got.TclkPS) != math.Float64bits(want.TclkPS) {
				t.Fatalf("f=%v v=%v: analysis fields diverge: %+v vs %+v", freq, v, got, want)
			}
		}
	}
}

// TestWorstSlackZeroAlloc asserts the characterizer inner loop allocates
// nothing once the depth table exists.
func TestWorstSlackZeroAlloc(t *testing.T) {
	c := testCircuit()
	if _, err := c.WorstSlack(3.2, 0.9); err != nil { // builds depths
		t.Fatal(err)
	}
	v := 0.6
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := c.WorstSlack(3.2, v); err != nil {
			t.Fatal(err)
		}
		v += 1e-6 // defeat trivial same-input caching of the whole call
	})
	if allocs != 0 {
		t.Fatalf("WorstSlack allocated %.1f per op, want 0", allocs)
	}
}

// TestFaultProbabilityMemoBitExact checks the erfc memo against the direct
// evaluation, including negative, zero, and positive slacks.
func TestFaultProbabilityMemoBitExact(t *testing.T) {
	c := testCircuit()
	for i := -500; i <= 500; i++ {
		a := Analysis{SlackPS: float64(i) * 0.37}
		want := 0.5 * math.Erfc(a.SlackPS/c.JitterSigmaPS/math.Sqrt2)
		miss := c.FaultProbability(a)
		hit := c.FaultProbability(a)
		if math.Float64bits(miss) != math.Float64bits(want) {
			t.Fatalf("slack=%v: memo miss %v != direct %v", a.SlackPS, miss, want)
		}
		if math.Float64bits(hit) != math.Float64bits(want) {
			t.Fatalf("slack=%v: memo hit %v != direct %v", a.SlackPS, hit, want)
		}
	}
}

// TestFaultProbabilityZeroSlack guards the zero-bit-pattern corner: slack
// +0.0 hashes to a key of 0, which must not read as an empty cache slot
// (the probability there is 0.5, not 0).
func TestFaultProbabilityZeroSlack(t *testing.T) {
	c := testCircuit()
	for i := 0; i < 2; i++ {
		if got := c.FaultProbability(Analysis{SlackPS: 0}); got != 0.5 {
			t.Fatalf("call %d: FaultProbability(slack=+0) = %v, want 0.5", i+1, got)
		}
	}
}

// TestPathByNameAfterAppend verifies the lazy name index notices appended
// paths instead of serving a stale table.
func TestPathByNameAfterAppend(t *testing.T) {
	c := testCircuit()
	if _, ok := c.PathByName(c.Paths[0].Name); !ok {
		t.Fatal("existing path not found")
	}
	c.Paths = append(c.Paths, Path{Name: "late", SrcDepth: 0.1, PropDepth: 0.4, SetupPS: 20})
	p, ok := c.PathByName("late")
	if !ok || p.Name != "late" {
		t.Fatalf("appended path not found after re-index: %+v, %v", p, ok)
	}
}

// TestCloneOwnsPrivateMemo verifies clones do not share delay-memo storage:
// warming one clone must not leak entries into another (the arrays are
// value-copied, not aliased).
func TestCloneOwnsPrivateMemo(t *testing.T) {
	base := testCircuit()
	base.Prepare()
	a, b := base.Clone(), base.Clone()
	va, vb := 0.71, 0.93
	wantA, wantB := base.Tech.Delay(va), base.Tech.Delay(vb)
	if got := a.unitDelay(va); math.Float64bits(got) != math.Float64bits(wantA) {
		t.Fatalf("clone a: %v != %v", got, wantA)
	}
	if got := b.unitDelay(vb); math.Float64bits(got) != math.Float64bits(wantB) {
		t.Fatalf("clone b: %v != %v", got, wantB)
	}
	// a never computed vb and b never computed va; both must still be exact.
	if got := a.unitDelay(vb); math.Float64bits(got) != math.Float64bits(wantB) {
		t.Fatalf("clone a at vb: %v != %v", got, wantB)
	}
	if got := b.unitDelay(va); math.Float64bits(got) != math.Float64bits(wantA) {
		t.Fatalf("clone b at va: %v != %v", got, wantA)
	}
}
