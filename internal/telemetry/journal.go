package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"plugvolt/internal/sim"
)

// Event is one structured journal entry: a virtual timestamp, a type tag,
// and free-form fields. Fields should hold JSON-friendly scalar values
// (string, int, float64, bool); nested structures are allowed but keep
// entries grep-able.
type Event struct {
	At     sim.Time
	Type   string
	Fields map[string]any
}

// appendJSON renders the event as one deterministic JSON object:
// at_ps and type first, then fields in sorted key order.
func (e Event) appendJSON(buf []byte) ([]byte, error) {
	buf = append(buf, fmt.Sprintf(`{"at_ps":%d,"type":%q`, int64(e.At), e.Type)...)
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, err := json.Marshal(e.Fields[k])
		if err != nil {
			return nil, fmt.Errorf("telemetry: event %q field %q: %w", e.Type, k, err)
		}
		buf = append(buf, ',')
		kb, _ := json.Marshal(k)
		buf = append(buf, kb...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// Journal is a bounded, append-only structured event log. When the cap is
// reached, further events are counted as dropped rather than evicting
// history — an experiment's opening (module load, first interventions) is
// usually the part worth keeping, and a hard bound keeps memory safe under
// runaway emitters like per-tick kthread wakes. Emit on a nil *Journal is a
// no-op.
type Journal struct {
	mu      sync.Mutex
	clock   Clock
	cap     int
	events  []Event
	dropped uint64
	// onDrop, when set, runs once per dropped event (outside the journal
	// lock), letting NewSet surface the loss as a telemetry counter.
	onDrop func()
}

// DefaultJournalCap bounds a journal when the caller passes cap <= 0.
const DefaultJournalCap = 1 << 16

// NewJournal builds a journal stamped by clock, bounded at cap events
// (cap <= 0 selects DefaultJournalCap).
func NewJournal(clock Clock, cap int) *Journal {
	if cap <= 0 {
		cap = DefaultJournalCap
	}
	return &Journal{clock: clock, cap: cap}
}

// Emit appends one event stamped with the current virtual time.
func (j *Journal) Emit(typ string, fields map[string]any) {
	if j == nil {
		return
	}
	var at sim.Time
	if j.clock != nil {
		at = j.clock()
	}
	j.mu.Lock()
	if len(j.events) >= j.cap {
		j.dropped++
		cb := j.onDrop
		j.mu.Unlock()
		if cb != nil {
			cb()
		}
		return
	}
	j.events = append(j.events, Event{At: at, Type: typ, Fields: fields})
	j.mu.Unlock()
}

// Full reports whether the journal has reached its cap, i.e. whether the
// next Emit would be rejected under the drop-newest policy. Periodic hot
// paths check it to skip building event field maps that cannot be retained;
// events suppressed this way are not counted as dropped. Nil-safe.
func (j *Journal) Full() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events) >= j.cap
}

// OnDrop registers a callback invoked once per event rejected at the cap
// (after the drop is counted, outside the journal lock). A nil journal or
// nil callback is a no-op.
func (j *Journal) OnDrop(fn func()) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.onDrop = fn
	j.mu.Unlock()
}

// Len reports the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Dropped reports events rejected after the cap was reached.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Cap reports the journal's bound.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return j.cap
}

// Events returns a copy of the retained events in emission order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// OfType returns retained events matching typ, in emission order.
func (j *Journal) OfType(typ string) []Event {
	var out []Event
	for _, e := range j.Events() {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL renders the journal as one JSON object per line, in emission
// order, each with deterministic key order (at_ps, type, then sorted
// fields). Byte-identical across identically-seeded runs as long as every
// emitter is driven by the virtual clock.
func (j *Journal) WriteJSONL(w io.Writer) error {
	return j.WriteJSONLTail(w, 0)
}

// WriteJSONLTail renders the last n retained events as JSONL (n <= 0 means
// all) — the journal view the observability server's /events endpoint
// serves.
func (j *Journal) WriteJSONLTail(w io.Writer, n int) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	events := append([]Event(nil), j.events...)
	j.mu.Unlock()
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	var buf []byte
	for _, e := range events {
		buf = buf[:0]
		b, err := e.appendJSON(buf)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
