package telemetry

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// The streaming fleet engine folds per-machine snapshots incrementally:
// merged = MergeSnapshots(merged, s_i, ...). These property tests are what
// makes that legal. Two regimes matter:
//
//   - With integer-valued samples (counters, bucket counts — the vast
//     majority of telemetry) float addition is exact, so MergeSnapshots is
//     fully commutative and associative and the fold order is irrelevant.
//   - With arbitrary float values, addition is commutative but NOT
//     associative; what still holds exactly is left-fold splitting:
//     MergeSnapshots(s0..sn) == MergeSnapshots(MergeSnapshots(s0..sk), sk+1..sn)
//     because the incremental form performs the identical sequence of
//     additions. That is the exact invariant the stream relies on.

// mergeFamilies is the fixed metric universe random snapshots draw from:
// help and kind are functions of the name, and histogram bounds are fixed
// per family, so two random snapshots never conflict structurally.
var mergeFamilies = []struct {
	name   string
	kind   Kind
	bounds []float64
}{
	{"polls_total", KindCounter, nil},
	{"stolen_seconds", KindCounter, nil},
	{"resident_bytes", KindGauge, nil},
	{"poll_latency", KindHistogram, []float64{1, 10, 100}},
	{"dwell_time", KindHistogram, []float64{0.5, 5}},
}

var mergeLabelPool = []Labels{
	nil,
	{"core": "0"},
	{"core": "1"},
	{"model": "skylake", "core": "0"},
}

// randomSnapshot draws a snapshot from the universe. With integers true
// every sample is an exactly-representable small integer, making float
// addition associative; otherwise samples are adversarial floats.
func randomSnapshot(rng *rand.Rand, integers bool) *Snapshot {
	val := func() float64 {
		if integers {
			return float64(rng.Intn(1 << 20))
		}
		return rng.NormFloat64() * 1e-3 * float64(uint64(1)<<uint(rng.Intn(40)))
	}
	s := &Snapshot{AtPS: int64(rng.Intn(1000))}
	for _, fam := range mergeFamilies {
		if rng.Intn(3) == 0 {
			continue // family absent from this machine
		}
		m := MetricSnapshot{Name: fam.name, Help: "help for " + fam.name, Kind: fam.kind}
		for _, labels := range mergeLabelPool {
			if rng.Intn(2) == 0 {
				continue
			}
			ss := SeriesSnapshot{Labels: labels.clone()}
			if fam.kind == KindHistogram {
				ss.Count = uint64(rng.Intn(1000))
				ss.Sum = val()
				var cum uint64
				for _, b := range fam.bounds {
					cum += uint64(rng.Intn(100))
					ss.Buckets = append(ss.Buckets, BucketCount{UpperBound: b, Cumulative: cum})
				}
			} else {
				ss.Value = val()
			}
			m.Series = append(m.Series, ss)
		}
		if len(m.Series) > 0 {
			s.Metrics = append(s.Metrics, m)
		}
	}
	return s
}

// render is the byte-level equality surface: the Prometheus exposition plus
// the JSON form.
func render(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	j, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return append(buf.Bytes(), j...)
}

func mustMerge(t *testing.T, snaps ...*Snapshot) *Snapshot {
	t.Helper()
	out, err := MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMergeCommutative: with integer-valued samples, argument order is
// irrelevant to the byte level.
func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a, b := randomSnapshot(rng, true), randomSnapshot(rng, true)
		ab := render(t, mustMerge(t, a, b))
		ba := render(t, mustMerge(t, b, a))
		if !bytes.Equal(ab, ba) {
			t.Fatalf("trial %d: merge(a,b) != merge(b,a)", trial)
		}
	}
}

// TestMergeAssociative: with integer-valued samples, grouping is irrelevant
// to the byte level.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a, b, c := randomSnapshot(rng, true), randomSnapshot(rng, true), randomSnapshot(rng, true)
		flat := render(t, mustMerge(t, a, b, c))
		left := render(t, mustMerge(t, mustMerge(t, a, b), c))
		right := render(t, mustMerge(t, a, mustMerge(t, b, c)))
		if !bytes.Equal(flat, left) || !bytes.Equal(flat, right) {
			t.Fatalf("trial %d: associativity broken", trial)
		}
	}
}

// TestMergeIdentityEmpty: the empty snapshot (and nil) is the identity, on
// either side, and a merge of nothing is empty.
func TestMergeIdentityEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	empty := &Snapshot{}
	for trial := 0; trial < 20; trial++ {
		a := randomSnapshot(rng, false) // identity must hold for ANY floats
		want := render(t, mustMerge(t, a))
		if !bytes.Equal(render(t, mustMerge(t, empty, a)), want) {
			t.Fatal("left identity broken")
		}
		if !bytes.Equal(render(t, mustMerge(t, a, empty)), want) {
			t.Fatal("right identity broken")
		}
		if !bytes.Equal(render(t, mustMerge(t, nil, a, nil)), want) {
			t.Fatal("nil inputs not ignored")
		}
	}
	if out := mustMerge(t); len(out.Metrics) != 0 || out.AtPS != 0 {
		t.Fatalf("merge of nothing: %+v", out)
	}
}

// TestMergeLeftFoldSplit is the streaming invariant, and it must hold for
// arbitrary (non-associative) float values: folding a prefix and continuing
// performs the identical addition sequence as one flat merge.
func TestMergeLeftFoldSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		snaps := make([]*Snapshot, n)
		for i := range snaps {
			snaps[i] = randomSnapshot(rng, false)
		}
		flat := render(t, mustMerge(t, snaps...))
		for k := 1; k < n; k++ {
			prefix := mustMerge(t, snaps[:k]...)
			folded := mustMerge(t, append([]*Snapshot{prefix}, snaps[k:]...)...)
			if !bytes.Equal(render(t, folded), flat) {
				t.Fatalf("trial %d: left-fold split at %d/%d diverges", trial, k, n)
			}
		}
		// Batch-wise incremental fold, the exact shape the fleet stream uses.
		acc := &Snapshot{}
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(n-lo)
			acc = mustMerge(t, append([]*Snapshot{acc}, snaps[lo:hi]...)...)
			lo = hi
		}
		if !bytes.Equal(render(t, acc), flat) {
			t.Fatalf("trial %d: batch-wise fold diverges", trial)
		}
	}
}

// TestMergeKindConflict: one name carrying two kinds must be a typed merge
// error, not silent corruption.
func TestMergeKindConflict(t *testing.T) {
	a := &Snapshot{Metrics: []MetricSnapshot{{Name: "polls_total", Kind: KindCounter,
		Series: []SeriesSnapshot{{Value: 1}}}}}
	b := &Snapshot{Metrics: []MetricSnapshot{{Name: "polls_total", Kind: KindGauge,
		Series: []SeriesSnapshot{{Value: 2}}}}}
	if _, err := MergeSnapshots(a, b); err == nil || !strings.Contains(err.Error(), "polls_total") {
		t.Fatalf("kind conflict not rejected: %v", err)
	}
}

// TestMergeBucketLayoutConflict: histogram series of one family must agree
// on bucket count and bounds.
func TestMergeBucketLayoutConflict(t *testing.T) {
	hist := func(buckets ...BucketCount) *Snapshot {
		return &Snapshot{Metrics: []MetricSnapshot{{Name: "poll_latency", Kind: KindHistogram,
			Series: []SeriesSnapshot{{Count: 1, Sum: 1, Buckets: buckets}}}}}
	}
	a := hist(BucketCount{UpperBound: 1, Cumulative: 1}, BucketCount{UpperBound: 10, Cumulative: 1})
	short := hist(BucketCount{UpperBound: 1, Cumulative: 1})
	if _, err := MergeSnapshots(a, short); err == nil || !strings.Contains(err.Error(), "buckets") {
		t.Fatalf("bucket-count conflict not rejected: %v", err)
	}
	skewed := hist(BucketCount{UpperBound: 1, Cumulative: 1}, BucketCount{UpperBound: 20, Cumulative: 1})
	if _, err := MergeSnapshots(a, skewed); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Fatalf("bucket-bound conflict not rejected: %v", err)
	}
}

// FuzzMergeSnapshots drives randomized merge inputs from fuzzed seeds:
// merging must never panic, and whenever it succeeds the integer-regime
// commutativity and the left-fold invariant must hold.
func FuzzMergeSnapshots(f *testing.F) {
	f.Add(int64(1), 2)
	f.Add(int64(42), 5)
	f.Add(int64(-7), 3)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 1 || n > 8 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		snaps := make([]*Snapshot, n)
		for i := range snaps {
			snaps[i] = randomSnapshot(rng, true)
		}
		flat, err := MergeSnapshots(snaps...)
		if err != nil {
			t.Fatalf("structurally-compatible snapshots rejected: %v", err)
		}
		want := render(t, flat)
		// Reversed order (commutativity, integer regime).
		rev := make([]*Snapshot, n)
		for i := range snaps {
			rev[n-1-i] = snaps[i]
		}
		if got := render(t, mustMerge(t, rev...)); !bytes.Equal(got, want) {
			t.Fatal("reversed merge diverges")
		}
		// Incremental left fold (the stream's shape).
		acc := &Snapshot{}
		for _, s := range snaps {
			acc = mustMerge(t, acc, s)
		}
		if got := render(t, acc); !bytes.Equal(got, want) {
			t.Fatal("incremental fold diverges")
		}
	})
}
