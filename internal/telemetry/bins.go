package telemetry

import (
	"errors"
	"math"
	"sort"
)

// FloorBin maps v to the lower bound of its width-wide bin using floor
// division, so negative values land in the bin *below* zero: -5 mV with a
// 10 mV width bins to -10, not 0. Plain integer division truncates toward
// zero and silently merged every sub-zero value into the 0 bin — the
// mis-binning bug this replaces (any sub-zero effective offset, exactly the
// sign every undervolt measurement lives in).
func FloorBin(v float64, width int) int {
	return int(math.Floor(v/float64(width))) * width
}

// Bins is a dynamic floor-binned integer histogram: values bucket into
// width-wide bins keyed by their lower bound, with bins materialized on
// first observation. It complements the Registry's fixed-bucket Histogram
// for distributions whose range is not known up front (rail-voltage
// timelines, effective offsets).
type Bins struct {
	// Width is the bin width (> 0).
	Width  int
	counts map[int]int
	n      int
}

// NewBins builds an empty floor-binned histogram.
func NewBins(width int) (*Bins, error) {
	if width <= 0 {
		return nil, errors.New("telemetry: bin width must be positive")
	}
	return &Bins{Width: width, counts: map[int]int{}}, nil
}

// Observe records one value.
func (b *Bins) Observe(v float64) {
	b.counts[FloorBin(v, b.Width)]++
	b.n++
}

// Count reports total observations.
func (b *Bins) Count() int { return b.n }

// Snapshot returns the sorted bin lower bounds and the bin -> count map.
func (b *Bins) Snapshot() ([]int, map[int]int) {
	bins := make([]int, 0, len(b.counts))
	counts := make(map[int]int, len(b.counts))
	for lo, c := range b.counts {
		bins = append(bins, lo)
		counts[lo] = c
	}
	sort.Ints(bins)
	return bins, counts
}
