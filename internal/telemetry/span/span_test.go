package span

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"strings"
	"testing"

	"plugvolt/internal/sim"
)

// fakeClock is a manually-advanced virtual clock for pure unit tests.
type fakeClock struct{ now sim.Time }

func (c *fakeClock) clock() sim.Time { return c.now }

// emitSample records a small causal tree:
//
//	tick ─ poll ─ rdmsr
//	            └ intervention ─ write
func emitSample(tr *Tracer, c *fakeClock) {
	tick := tr.Start("kernel/guard", "kthread_tick", map[string]any{"core": 0})
	poll := tr.Start("guard", "guard_poll", map[string]any{"core": 1})
	tr.Complete("kernel/guard", "rdmsr", c.now, 120*sim.Nanosecond, map[string]any{"addr": "0x198"})
	iv := tr.Start("guard", "guard_intervention", map[string]any{"core": 1, "offset_mv": -230})
	tr.Instant("msr/core1", "mailbox_write", map[string]any{"offset_mv": 0, "outcome": "accepted"})
	iv.EndWithCost(400 * sim.Nanosecond)
	poll.EndWithCost(900 * sim.Nanosecond)
	c.now += 100 * sim.Microsecond
	tick.End()
}

func TestDeterministicIDsAndParents(t *testing.T) {
	build := func() *Tracer {
		c := &fakeClock{}
		tr := NewTracer(c.clock, 42, 0)
		emitSample(tr, c)
		return tr
	}
	a, b := build().Spans(), build().Spans()
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("span counts: %d vs %d (want 5)", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Parent != b[i].Parent {
			t.Errorf("span %d: ids differ across identical runs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].ID == 0 {
			t.Errorf("span %d: zero ID", i)
		}
	}
	// Causality: the mailbox write's parent is the intervention, whose
	// parent is the poll, whose parent is the tick.
	byName := map[string]Span{}
	for _, s := range a {
		byName[s.Name] = s
	}
	if byName["mailbox_write"].Parent != byName["guard_intervention"].ID {
		t.Errorf("mailbox_write parent = %x, want intervention %x",
			byName["mailbox_write"].Parent, byName["guard_intervention"].ID)
	}
	if byName["guard_intervention"].Parent != byName["guard_poll"].ID {
		t.Errorf("intervention parent = %x, want poll %x",
			byName["guard_intervention"].Parent, byName["guard_poll"].ID)
	}
	if byName["guard_poll"].Parent != byName["kthread_tick"].ID {
		t.Errorf("poll parent = %x, want tick %x",
			byName["guard_poll"].Parent, byName["kthread_tick"].ID)
	}
	if byName["kthread_tick"].Parent != 0 {
		t.Errorf("tick should be a root span, got parent %x", byName["kthread_tick"].Parent)
	}
}

func TestSeedChangesIDs(t *testing.T) {
	a := NewTracer(nil, 1, 0)
	b := NewTracer(nil, 2, 0)
	ia := a.Complete("t", "x", 0, 0, nil)
	ib := b.Complete("t", "x", 0, 0, nil)
	if ia == ib {
		t.Fatalf("same ID %x from different seeds", ia)
	}
}

func TestChromeTraceByteIdentical(t *testing.T) {
	render := func() []byte {
		c := &fakeClock{}
		tr := NewTracer(c.clock, 7, 0)
		emitSample(tr, c)
		tr.Sample("cpu/core1", "rail_mv", 5*sim.Microsecond, 640)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("chrome trace differs across identical runs:\n%s\n----\n%s", a, b)
	}
	// The document must be valid JSON with the expected shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a)
	}
	var xs, ms, cs int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			xs++
		case "M":
			ms++
		case "C":
			cs++
		}
	}
	if xs != 5 || cs != 1 || ms == 0 {
		t.Fatalf("event mix: %d X, %d M, %d C (want 5 X, >0 M, 1 C)", xs, ms, cs)
	}
}

func TestChromeTraceOrderIndependent(t *testing.T) {
	// Two emission interleavings of the same spans must render identically:
	// this is what makes the export worker-count invariant.
	mk := func(order []int) []byte {
		tr := NewTracer(nil, 3, 0)
		for _, freq := range order {
			tr.Complete("characterize/"+strings.Repeat("0", 0)+itoa(freq), "row",
				0, sim.Duration(freq)*sim.Microsecond, map[string]any{"freq_khz": freq})
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := mk([]int{1200, 1800, 2400})
	b := mk([]int{2400, 1200, 1800})
	if !bytes.Equal(a, b) {
		t.Fatalf("export depends on emission order:\n%s\n----\n%s", a, b)
	}
}

func itoa(v int) string {
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestFolded(t *testing.T) {
	c := &fakeClock{}
	tr := NewTracer(c.clock, 7, 0)
	emitSample(tr, c)
	var buf bytes.Buffer
	if err := tr.WriteFolded(&buf); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	out := buf.String()
	want := "kernel/guard;kthread_tick;guard_poll;guard_intervention;mailbox_write 0\n"
	if !strings.Contains(out, want) {
		t.Errorf("folded output missing path %q:\n%s", want, out)
	}
	// Lines must be sorted and values aggregated self-times.
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Errorf("folded lines not sorted: %q then %q", lines[i-1], lines[i])
		}
	}
	// The intervention's self time excludes the (zero-cost) write: 400ns.
	if !strings.Contains(out, "guard_intervention 400\n") {
		t.Errorf("intervention self-time missing:\n%s", out)
	}
}

func TestCapDropsNewest(t *testing.T) {
	tr := NewTracer(nil, 1, 4)
	for i := 0; i < 10; i++ {
		tr.Complete("t", "s", sim.Time(i), 0, nil)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	// The retained spans are the oldest (drop-newest policy).
	for i, s := range tr.Spans() {
		if s.Start != sim.Time(i) {
			t.Fatalf("span %d start = %d, want %d", i, s.Start, i)
		}
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	a := tr.Start("t", "s", nil)
	a.SetAttr("k", 1)
	a.End()
	a.EndWithCost(5)
	if id := tr.Complete("t", "s", 0, 0, nil); id != 0 {
		t.Fatalf("nil Complete returned %x", id)
	}
	if tr.Instant("t", "s", nil) != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Cap() != 0 {
		t.Fatal("nil tracer not inert")
	}
	tr.Sample("t", "c", 0, 1)
	if tr.Spans() != nil || tr.Counters() != nil {
		t.Fatal("nil tracer returned data")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	if err := tr.WriteFolded(&buf); err != nil {
		t.Fatalf("nil WriteFolded: %v", err)
	}
}

func TestTsMicros(t *testing.T) {
	cases := []struct {
		ps   int64
		want string
	}{
		{0, "0"},
		{1_000_000, "1"},
		{1_500_000, "1.5"},
		{123, "0.000123"},
		{2_000_010, "2.00001"},
		{537_000_000_000, "537000"},
	}
	for _, c := range cases {
		if got := tsMicros(c.ps); got != c.want {
			t.Errorf("tsMicros(%d) = %q, want %q", c.ps, got, c.want)
		}
	}
}

func TestEndTwiceAndScopeUnwind(t *testing.T) {
	c := &fakeClock{}
	tr := NewTracer(c.clock, 9, 0)
	outer := tr.Start("t", "outer", nil)
	inner := tr.Start("t", "inner", nil)
	outer.End() // out of order: unwinds past inner
	outer.End() // double end: no-op
	inner.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// A span started now must not be parented under the ended pair.
	root := tr.Start("t", "late", nil)
	root.End()
	for _, s := range tr.Spans() {
		if s.Name == "late" && s.Parent != 0 {
			t.Fatalf("late span inherited stale parent %x", s.Parent)
		}
	}
}

// TestMintMatchesFNV pins the inlined FNV-64a in mint to the hash/fnv
// reference: span IDs are part of the golden-artifact contract, so the
// allocation-free rewrite must mint bit-identical IDs.
func TestMintMatchesFNV(t *testing.T) {
	ref := func(seed int64, track string, seq uint64) ID {
		h := fnv.New64a()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(seed))
		h.Write(b[:])
		h.Write([]byte(track))
		binary.LittleEndian.PutUint64(b[:], seq)
		h.Write(b[:])
		id := ID(h.Sum64())
		if id == 0 {
			id = 1
		}
		return id
	}
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40, -(1 << 40)} {
		tr := NewTracer(nil, seed, 0)
		for _, track := range []string{"", "guard", "kernel/plug_your_volt/3", "msr/core1"} {
			for want := uint64(0); want < 5; want++ {
				tr.mu.Lock()
				id, seq := tr.mint(track)
				tr.mu.Unlock()
				if seq != want {
					t.Fatalf("seed %d track %q: seq = %d, want %d", seed, track, seq, want)
				}
				if exp := ref(seed, track, seq); id != exp {
					t.Fatalf("seed %d track %q seq %d: id = %x, want fnv %x", seed, track, seq, id, exp)
				}
			}
		}
	}
}

// TestScopeMirrorsActive runs the same emission program through the pointer
// (Start/Active) and value (StartScope/Scope) APIs: recorded spans must be
// identical — IDs, parents, order, durations — so instrumented code can move
// to the zero-alloc form without touching golden traces.
func TestScopeMirrorsActive(t *testing.T) {
	viaActive := func() []Span {
		c := &fakeClock{}
		tr := NewTracer(c.clock, 7, 0)
		tick := tr.Start("kernel/g", "tick", map[string]any{"core": 0})
		poll := tr.Start("guard", "poll", map[string]any{"core": 1})
		rd := tr.Start("kernel/g", "rdmsr", map[string]any{"addr": "0x198"})
		rd.EndWithCost(50 * sim.Nanosecond)
		poll.EndWithCost(700 * sim.Nanosecond)
		c.now += 100 * sim.Microsecond
		tick.End()
		return tr.Spans()
	}
	viaScope := func() []Span {
		c := &fakeClock{}
		tr := NewTracer(c.clock, 7, 0)
		tick := tr.StartScope("kernel/g", "tick", map[string]any{"core": 0})
		poll := tr.StartScope("guard", "poll", map[string]any{"core": 1})
		rd := tr.StartScope("kernel/g", "rdmsr", map[string]any{"addr": "0x198"})
		rd.EndWithCost(50 * sim.Nanosecond)
		poll.EndWithCost(700 * sim.Nanosecond)
		c.now += 100 * sim.Microsecond
		tick.End()
		return tr.Spans()
	}
	a, s := viaActive(), viaScope()
	if len(a) != len(s) || len(a) != 3 {
		t.Fatalf("span counts: active %d, scope %d (want 3)", len(a), len(s))
	}
	for i := range a {
		if a[i].ID != s[i].ID || a[i].Parent != s[i].Parent || a[i].Track != s[i].Track ||
			a[i].Name != s[i].Name || a[i].Start != s[i].Start || a[i].Dur != s[i].Dur ||
			a[i].Seq != s[i].Seq {
			t.Errorf("span %d differs: active %+v, scope %+v", i, a[i], s[i])
		}
	}
}

// TestScopeZeroValueAndDoubleEnd covers the inert paths: the zero Scope (and
// a nil tracer's Scope) absorbs calls, and a scope ends at most once.
func TestScopeZeroValueAndDoubleEnd(t *testing.T) {
	var nilTr *Tracer
	s := nilTr.StartScope("t", "x", nil)
	s.End()
	s.EndWithCost(5)
	if s.ID() != 0 {
		t.Fatalf("nil tracer scope has ID %x", s.ID())
	}
	var zero Scope
	zero.End() // must not panic

	tr := NewTracer(nil, 3, 0)
	sc := tr.StartScope("t", "x", nil)
	sc.EndWithCost(10)
	sc.EndWithCost(20)
	sc.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Dur != 10 {
		t.Fatalf("double-ended scope recorded %+v, want one span of dur 10", spans)
	}
}

// TestScopeSteadyStateZeroAlloc is the tracer-level half of the guard's
// zero-alloc contract: once the span buffer is full (drop-newest steady
// state) and the track's seq entry exists, StartScope+EndWithCost must not
// allocate.
func TestScopeSteadyStateZeroAlloc(t *testing.T) {
	c := &fakeClock{}
	tr := NewTracer(c.clock, 11, 8)
	attrs := map[string]any{"core": 0}
	for i := 0; i < 16; i++ { // fill buffer + warm seqs/stack capacity
		sc := tr.StartScope("guard", "poll", attrs)
		sc.EndWithCost(700 * sim.Nanosecond)
	}
	if tr.Len() != 8 || tr.Dropped() == 0 {
		t.Fatalf("warm-up: len=%d dropped=%d, want full buffer", tr.Len(), tr.Dropped())
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sc := tr.StartScope("guard", "poll", attrs)
		sc.EndWithCost(700 * sim.Nanosecond)
	})
	if allocs != 0 {
		t.Fatalf("StartScope/EndWithCost allocates %.1f per span in steady state, want 0", allocs)
	}
}
