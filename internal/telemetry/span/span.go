// Package span is the causal tracing layer of the telemetry subsystem: a
// deterministic, virtual-clock span tracer whose output is part of the
// repository's golden-artifact contract.
//
// A span is a named interval on a track (a logical timeline such as "guard",
// "kernel/plugvolt_guard", "msr/core1" or "attack") with a parent link that
// records causality: the guard's corrective mailbox write is a child of the
// intervention that decided it, which is a child of the poll that detected
// the unsafe operating point, which is a child of the kthread tick that ran
// the poll. That chain is exactly the temporal safety argument of the paper's
// countermeasure — the window between an unsafe `wrmsr 0x150` and the guard's
// rewrite — made machine-checkable (see internal/slo).
//
// Determinism rules, mirroring the rest of internal/telemetry:
//
//   - Timestamps come from an injected func() sim.Time; wall clocks never
//     appear. Span durations are either virtual-clock deltas (End) or
//     explicit CPU-cost charges (EndWithCost) — the latter because kthread
//     work charges stolen time without advancing the sim clock.
//   - Span IDs are derived from (seed, track, per-track sequence) via FNV-64a,
//     never from pointers, goroutine identity or randomness, so two
//     identically-seeded runs mint identical IDs.
//   - Exporters (see export.go) sort spans by (start, track, sequence) before
//     rendering, so export bytes are independent of emission interleaving —
//     in particular of the characterizer's worker count, provided emitters
//     use per-row tracks.
//
// All methods are nil-receiver safe: instrumented code holds a possibly-nil
// *Tracer and calls it unconditionally.
package span

import (
	"sort"
	"sync"

	"plugvolt/internal/sim"
)

// Clock produces the current virtual time. (*sim.Simulator).Now fits.
type Clock func() sim.Time

// ID identifies a span. The zero ID means "no span" (used for absent
// parents).
type ID uint64

// Span is one completed interval. Spans are immutable once recorded.
type Span struct {
	ID     ID
	Parent ID // zero when the span has no recorded parent
	Track  string
	Name   string
	Start  sim.Time
	Dur    sim.Duration
	// Attrs carries span metadata (core index, offset mV, outcome, ...).
	// Values should be JSON-friendly scalars.
	Attrs map[string]any
	// Seq is the span's per-track sequence number; together with Track it
	// totally orders spans minted on the same track and seeds the ID.
	Seq uint64
}

// DefaultCap bounds a tracer when the constructor gets cap <= 0. Spans past
// the cap are counted as dropped rather than evicting history, matching the
// journal's drop-newest policy: the opening of an experiment is usually the
// part worth keeping.
const DefaultCap = 1 << 16

// Tracer records spans. Construct with NewTracer; a nil *Tracer is a valid
// no-op sink.
type Tracer struct {
	mu      sync.Mutex
	clock   Clock
	seed    int64
	cap     int
	spans   []Span
	dropped uint64
	seqs    map[string]uint64
	// stack is the scope stack of currently-open span IDs; the top is the
	// parent of the next span started. The simulation core is single-threaded,
	// which makes a single stack a sound causality model; the mutex keeps the
	// race detector happy for concurrent readers (the obs server).
	stack []ID
	// counters holds sampled counter tracks ("C" events in the Chrome
	// export), e.g. the victim rail voltage over time.
	counters []CounterSample
}

// CounterSample is one sampled value on a counter track, rendered as a
// Chrome trace "C" event.
type CounterSample struct {
	Track string
	Name  string
	At    sim.Time
	Value float64
}

// NewTracer builds a tracer stamped by clock, minting IDs from seed, bounded
// at cap spans (cap <= 0 selects DefaultCap). A nil clock stamps spans at
// time zero.
func NewTracer(clock Clock, seed int64, cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Tracer{clock: clock, seed: seed, cap: cap, seqs: map[string]uint64{}}
}

// now reads the tracer clock.
func (t *Tracer) now() sim.Time {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// FNV-64a parameters (matching hash/fnv); the hash is inlined here because
// fnv.New64a returns its state behind the hash.Hash64 interface, which heap-
// allocates on every mint — one allocation per span on the guard's poll path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvUint64 folds v's little-endian bytes into h — byte-identical to writing
// the 8 bytes through hash/fnv.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= uint64(byte(v >> i))
		h *= fnvPrime64
	}
	return h
}

// mint allocates the next sequence number on track and derives the span ID
// from (seed, track, seq) via FNV-64a. Caller holds t.mu.
func (t *Tracer) mint(track string) (ID, uint64) {
	seq := t.seqs[track]
	t.seqs[track] = seq + 1
	h := fnvUint64(uint64(fnvOffset64), uint64(t.seed))
	for i := 0; i < len(track); i++ {
		h ^= uint64(track[i])
		h *= fnvPrime64
	}
	h = fnvUint64(h, seq)
	id := ID(h)
	if id == 0 { // reserve zero for "no span"
		id = 1
	}
	return id, seq
}

// record appends a completed span, honoring the cap. Caller holds t.mu.
func (t *Tracer) record(s Span) {
	if len(t.spans) >= t.cap {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Active is a span under construction, returned by Start. A nil *Active
// (from a nil tracer) absorbs all calls.
type Active struct {
	t     *Tracer
	span  Span
	ended bool
}

// Start opens a span on track at the current virtual time, parented under
// the innermost span still open (the scope stack top). Close it with End or
// EndWithCost; until then it is the parent of any span started beneath it.
func (t *Tracer) Start(track, name string, attrs map[string]any) *Active {
	return t.start(track, name, attrs, false)
}

// StartRoot opens a span like Start but with no parent, regardless of the
// scope stack. Periodic work that interrupts whatever the simulator happens
// to be running — a kthread tick firing inside an attack campaign's RunFor —
// uses this so preemption is not mistaken for causality. Spans started
// beneath it still parent under it normally.
func (t *Tracer) StartRoot(track, name string, attrs map[string]any) *Active {
	return t.start(track, name, attrs, true)
}

func (t *Tracer) start(track, name string, attrs map[string]any, root bool) *Active {
	if t == nil {
		return nil
	}
	at := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	id, seq := t.mint(track)
	var parent ID
	if !root {
		if n := len(t.stack); n > 0 {
			parent = t.stack[n-1]
		}
	}
	t.stack = append(t.stack, id)
	return &Active{t: t, span: Span{
		ID: id, Parent: parent, Track: track, Name: name,
		Start: at, Attrs: attrs, Seq: seq,
	}}
}

// ID reports the active span's ID (zero on nil).
func (a *Active) ID() ID {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// SetAttr attaches or overwrites one attribute before the span ends.
func (a *Active) SetAttr(key string, value any) {
	if a == nil || a.ended {
		return
	}
	a.t.mu.Lock()
	defer a.t.mu.Unlock()
	if a.span.Attrs == nil {
		a.span.Attrs = map[string]any{}
	}
	a.span.Attrs[key] = value
}

// End closes the span with a virtual-clock duration (now - start) and pops
// it from the scope stack. Ending twice is a no-op.
func (a *Active) End() {
	if a == nil || a.ended {
		return
	}
	a.finish(a.t.now() - a.span.Start)
}

// EndWithCost closes the span with an explicit duration — the CPU cost the
// work charged — instead of a clock delta. This is how kthread-side spans
// (polls, rdmsr/wrmsr steps) get nonzero durations: kernel work charges
// stolen time against the core without advancing the virtual clock, so a
// clock delta would always read zero.
func (a *Active) EndWithCost(d sim.Duration) {
	if a == nil || a.ended {
		return
	}
	if d < 0 {
		d = 0
	}
	a.finish(d)
}

func (a *Active) finish(d sim.Duration) {
	a.ended = true
	a.span.Dur = d
	t := a.t
	t.mu.Lock()
	defer t.mu.Unlock()
	// Pop this span from the scope stack. Out-of-order ends (a parent ended
	// before a still-open child) are tolerated by unwinding to the span.
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == a.span.ID {
			t.stack = t.stack[:i]
			break
		}
	}
	t.record(a.span)
}

// Scope is a by-value active span for allocation-free hot paths. Unlike
// Start, StartScope never heap-allocates: the Scope lives in the caller's
// frame. The trade-off is the contract on attrs — the map is retained by
// reference until the span is recorded at End/EndWithCost, so zero-alloc
// callers pass a preallocated map they never mutate afterwards (e.g. the
// guard's per-core poll attributes). There is no SetAttr; a scope's
// attributes are fixed at start. The zero Scope (and any Scope from a nil
// tracer) absorbs all calls.
type Scope struct {
	t     *Tracer
	span  Span
	ended bool
}

// StartScope opens a span exactly like Start — minted ID, parented under the
// scope-stack top, recorded when ended — but returns the active span by
// value. See Scope for the attrs aliasing contract.
func (t *Tracer) StartScope(track, name string, attrs map[string]any) Scope {
	return t.startScope(track, name, attrs, false)
}

// StartRootScope opens a parentless span like StartRoot, by value. Periodic
// hot paths (the kthread tick wrapper) use it so steady-state tracing never
// heap-allocates; spans started beneath it still parent under it normally.
func (t *Tracer) StartRootScope(track, name string, attrs map[string]any) Scope {
	return t.startScope(track, name, attrs, true)
}

func (t *Tracer) startScope(track, name string, attrs map[string]any, root bool) Scope {
	if t == nil {
		return Scope{}
	}
	at := t.now()
	t.mu.Lock()
	id, seq := t.mint(track)
	var parent ID
	if !root {
		if n := len(t.stack); n > 0 {
			parent = t.stack[n-1]
		}
	}
	t.stack = append(t.stack, id)
	t.mu.Unlock()
	return Scope{t: t, span: Span{
		ID: id, Parent: parent, Track: track, Name: name,
		Start: at, Attrs: attrs, Seq: seq,
	}}
}

// ID reports the scope's span ID (zero on the zero Scope).
func (s *Scope) ID() ID { return s.span.ID }

// End closes the scope with a virtual-clock duration, like (*Active).End.
func (s *Scope) End() {
	if s.t == nil || s.ended {
		return
	}
	s.finish(s.t.now() - s.span.Start)
}

// EndWithCost closes the scope with an explicit CPU-cost duration, like
// (*Active).EndWithCost. Ending twice is a no-op.
func (s *Scope) EndWithCost(d sim.Duration) {
	if s.t == nil || s.ended {
		return
	}
	if d < 0 {
		d = 0
	}
	s.finish(d)
}

func (s *Scope) finish(d sim.Duration) {
	s.ended = true
	s.span.Dur = d
	t := s.t
	t.mu.Lock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s.span.ID {
			t.stack = t.stack[:i]
			break
		}
	}
	t.record(s.span)
	t.mu.Unlock()
}

// Complete records an already-finished span in one call, parented under the
// current scope top. Use it for instantaneous or externally-timed work (an
// MSR write, a characterization row measured on its own private clock).
// It returns the minted ID so callers can reference the span.
func (t *Tracer) Complete(track, name string, start sim.Time, dur sim.Duration, attrs map[string]any) ID {
	if t == nil {
		return 0
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, seq := t.mint(track)
	var parent ID
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.record(Span{ID: id, Parent: parent, Track: track, Name: name,
		Start: start, Dur: dur, Attrs: attrs, Seq: seq})
	return id
}

// Instant records a zero-duration span at the current virtual time.
func (t *Tracer) Instant(track, name string, attrs map[string]any) ID {
	if t == nil {
		return 0
	}
	return t.Complete(track, name, t.now(), 0, attrs)
}

// Sample records one value on a counter track at the given virtual time,
// exported as a Chrome trace "C" event (e.g. rail voltage over time).
func (t *Tracer) Sample(track, name string, at sim.Time, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters = append(t.counters, CounterSample{Track: track, Name: name, At: at, Value: value})
}

// Spans returns a copy of the recorded spans in emission order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Counters returns a copy of the recorded counter samples in emission order.
func (t *Tracer) Counters() []CounterSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]CounterSample(nil), t.counters...)
}

// Len reports the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped reports spans rejected after the cap was reached.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Cap reports the tracer's span bound (0 on nil).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// sorted returns the spans ordered by (Start, Track, Seq) — the canonical
// export order, total because Seq is unique per track.
func sorted(spans []Span) []Span {
	out := append([]Span(nil), spans...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Seq < b.Seq
	})
	return out
}
