package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders the recorded spans in two interchange formats:
//
//   - Chrome trace-event JSON ("X" complete events plus "M" metadata and "C"
//     counter events), loadable in Perfetto (https://ui.perfetto.dev) or
//     chrome://tracing;
//   - folded flamegraph text (one "frame;frame;frame value" line per unique
//     causal path, self-time in virtual/CPU nanoseconds), consumable by
//     flamegraph.pl or speedscope.
//
// Both are rendered with deterministic ordering and number formatting so the
// bytes are identical across runs and across characterization worker counts,
// like every other artifact in this repository.

// trackPID groups tracks into Chrome "processes" by the track name's first
// path segment: "kernel/plugvolt_guard" and "kernel/attacker" share a pid.
func trackPID(track string) string {
	if i := strings.IndexByte(track, '/'); i >= 0 {
		return track[:i]
	}
	return track
}

// tsMicros renders a picosecond virtual time as the microsecond float the
// trace-event format expects, using the shortest exact decimal.
func tsMicros(ps int64) string {
	micros := ps / 1_000_000
	frac := ps % 1_000_000
	if frac == 0 {
		return strconv.FormatInt(micros, 10)
	}
	// Exact decimal: picoseconds have at most 6 fractional digits of a
	// microsecond, so format the remainder and trim trailing zeros.
	s := fmt.Sprintf("%d.%06d", micros, frac)
	return strings.TrimRight(s, "0")
}

// WriteChromeTrace renders every recorded span and counter sample as a
// Chrome trace-event JSON document.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var spans []Span
	var counters []CounterSample
	if t != nil {
		spans = t.Spans()
		counters = t.Counters()
	}
	spans = sorted(spans)
	counters = append([]CounterSample(nil), counters...)
	sort.SliceStable(counters, func(i, j int) bool {
		a, b := counters[i], counters[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})

	// Assign pids to track prefixes and tids to tracks, both in sorted order
	// so the numbering is independent of emission interleaving.
	trackSet := map[string]bool{}
	for _, s := range spans {
		trackSet[s.Track] = true
	}
	for _, c := range counters {
		trackSet[c.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for tr := range trackSet {
		tracks = append(tracks, tr)
	}
	sort.Strings(tracks)
	pids := map[string]int{}
	tids := map[string]int{}
	var prefixes []string
	for _, tr := range tracks {
		p := trackPID(tr)
		if _, ok := pids[p]; !ok {
			pids[p] = 0
			prefixes = append(prefixes, p)
		}
	}
	sort.Strings(prefixes)
	for i, p := range prefixes {
		pids[p] = i + 1
	}
	for i, tr := range tracks {
		tids[tr] = i + 1
	}

	bw := &errWriter{w: w}
	bw.str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			bw.str(",")
		}
		first = false
		bw.str("\n" + s)
	}
	// Metadata: name the processes and threads.
	for _, p := range prefixes {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%q}}`, pids[p], p))
	}
	for _, tr := range tracks {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			pids[trackPID(tr)], tids[tr], tr))
	}
	for _, s := range spans {
		args, err := spanArgs(s)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":%q,"args":%s}`,
			pids[trackPID(s.Track)], tids[s.Track],
			tsMicros(int64(s.Start)), tsMicros(int64(s.Dur)),
			s.Name, trackPID(s.Track), args))
	}
	for _, c := range counters {
		v, err := json.Marshal(c.Value)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf(`{"ph":"C","pid":%d,"tid":%d,"ts":%s,"name":%q,"args":{"value":%s}}`,
			pids[trackPID(c.Track)], tids[c.Track], tsMicros(int64(c.At)), c.Name, v))
	}
	bw.str("\n]}\n")
	return bw.err
}

// spanArgs renders a span's args object: span_id and parent_id first (hex,
// zero parent omitted), then attributes in sorted key order. json.Marshal on
// scalar values is deterministic, and encoding/json sorts map keys, so
// nested attribute values stay stable too.
func spanArgs(s Span) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"span_id":"%016x"`, uint64(s.ID))
	if s.Parent != 0 {
		fmt.Fprintf(&sb, `,"parent_id":"%016x"`, uint64(s.Parent))
	}
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, err := json.Marshal(s.Attrs[k])
		if err != nil {
			return "", fmt.Errorf("span: %s/%s attr %q: %w", s.Track, s.Name, k, err)
		}
		kb, _ := json.Marshal(k)
		sb.WriteByte(',')
		sb.Write(kb)
		sb.WriteByte(':')
		sb.Write(v)
	}
	sb.WriteByte('}')
	return sb.String(), nil
}

// WriteFolded renders the spans as folded flamegraph text: one line per
// unique causal path "track;name;name;... selfNanos", aggregated and sorted.
// Self time is the span's duration minus its children's (clamped at zero):
// kthread ticks charge the full tick cost while their poll children charge
// theirs, so subtracting avoids double counting in the flame view.
func (t *Tracer) WriteFolded(w io.Writer) error {
	var spans []Span
	if t != nil {
		spans = t.Spans()
	}
	spans = sorted(spans)
	byID := make(map[ID]*Span, len(spans))
	childDur := make(map[ID]int64, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	for i := range spans {
		if p := spans[i].Parent; p != 0 && byID[p] != nil {
			childDur[p] += int64(spans[i].Dur)
		}
	}
	agg := map[string]int64{}
	var frames []string
	for i := range spans {
		s := &spans[i]
		frames = frames[:0]
		// Walk to the root; depth-capped to stay safe against malformed
		// parent links.
		cur := s
		for depth := 0; cur != nil && depth < 64; depth++ {
			frames = append(frames, cur.Name)
			if cur.Parent == 0 {
				frames = append(frames, cur.Track)
				break
			}
			next := byID[cur.Parent]
			if next == nil {
				frames = append(frames, cur.Track)
			}
			cur = next
		}
		// frames is leaf..root; reverse into the folded root-first order.
		for l, r := 0, len(frames)-1; l < r; l, r = l+1, r-1 {
			frames[l], frames[r] = frames[r], frames[l]
		}
		self := int64(s.Dur) - childDur[s.ID]
		if self < 0 {
			self = 0
		}
		selfNanos := self / 1000 // ps -> ns
		agg[strings.Join(frames, ";")] += selfNanos
	}
	paths := make([]string, 0, len(agg))
	for p := range agg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	bw := &errWriter{w: w}
	for _, p := range paths {
		bw.str(p + " " + strconv.FormatInt(agg[p], 10) + "\n")
	}
	return bw.err
}

// errWriter folds write errors into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}
