// Package telemetry is the deterministic metrics-and-events subsystem of the
// reproduction: a registry of counters, gauges and fixed-bucket histograms
// with labeled series, plus a bounded structured event journal, all driven by
// the sim virtual clock — never the wall clock.
//
// Determinism is the design constraint that separates this from an
// off-the-shelf metrics library. The paper's quantitative claims (the guard
// wins the turnaround race, the 0.28 % SPEC2017 overhead of Table 2) are
// reproduced on a seeded virtual-time simulator whose golden-artifact
// contract requires bit-for-bit replay. So:
//
//   - timestamps come from an injected func() sim.Time, usually
//     (*sim.Simulator).Now, and nothing here ever reads time.Now();
//   - snapshots and expositions iterate metrics and series in sorted order,
//     so two identically-seeded runs render byte-identical output;
//   - instruments never advance the clock or draw randomness — observing a
//     value cannot perturb the experiment being observed.
//
// One caveat is inherited from the sharded characterizer: metrics labeled by
// worker attribute rows to whichever goroutine the Go scheduler handed them,
// so per-worker series vary run to run even though every sim-clock-derived
// metric (and the characterization grid itself) does not.
//
// All instrument methods are nil-receiver safe: code under instrumentation
// holds possibly-nil *Counter/*Gauge/*Histogram fields and calls them
// unconditionally; with telemetry disabled the calls are no-ops.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry/span"
)

// Clock produces the current virtual time. (*sim.Simulator).Now fits.
type Clock func() sim.Time

// Labels name one series within a metric family, e.g. {"core": "1"}.
type Labels map[string]string

// signature renders labels in sorted key order — the canonical series key.
func (l Labels) signature() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		// Both sides quoted: an unquoted key would let a crafted key like
		// `a="1",b` forge another set's signature.
		fmt.Fprintf(&sb, "%q=%q", k, l[k])
	}
	return sb.String()
}

// clone copies the label set so callers can reuse their map.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Kind discriminates the metric families.
type Kind string

// Metric kinds, matching the Prometheus exposition TYPE names.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// series is one labeled instance of a metric family. A series is either a
// scalar (counter/gauge) or a histogram, per its family's kind.
type series struct {
	labels Labels
	value  float64  // counter: monotone sum; gauge: last set
	counts []uint64 // histogram: per-bucket counts (parallel to bounds)
	sum    float64  // histogram: sum of observations
	n      uint64   // histogram: observation count
}

// family is one named metric with its labeled series.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram upper bounds, ascending; +Inf implicit
	series map[string]*series
}

func (f *family) get(labels Labels) *series {
	sig := labels.signature()
	s := f.series[sig]
	if s == nil {
		s = &series{labels: labels.clone()}
		if f.kind == KindHistogram {
			s.counts = make([]uint64, len(f.bounds))
		}
		f.series[sig] = s
	}
	return s
}

// Registry holds metric families keyed by name. The zero value is unusable;
// construct with NewRegistry. A nil *Registry is a valid no-op source of
// instruments.
type Registry struct {
	mu    sync.Mutex
	clock Clock
	fams  map[string]*family
}

// NewRegistry builds a registry stamped by the given virtual clock. A nil
// clock means snapshots carry time zero (useful for pure unit tests).
func NewRegistry(clock Clock) *Registry {
	return &Registry{clock: clock, fams: map[string]*family{}}
}

// now reads the registry clock.
func (r *Registry) now() sim.Time {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock()
}

// lookup returns the named family, creating it with the given kind on first
// use. Re-registering an existing name with a different kind panics: metric
// names are programmer-controlled, and a silent kind change would corrupt
// every consumer of the exposition.
func (r *Registry) lookup(name, help string, kind Kind, bounds []float64) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds,
			series: map[string]*series{}}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// Counter is a monotonically increasing metric. Methods on a nil receiver
// are no-ops.
type Counter struct {
	r *Registry
	s *series
}

// Counter returns the named counter series, creating it on first use.
// A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Counter{r: r, s: r.lookup(name, help, KindCounter, nil).get(labels)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.r.mu.Lock()
	c.s.value += v
	c.r.mu.Unlock()
}

// Value reads the current count (0 on a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.s.value
}

// Gauge is a metric that can move in both directions. Methods on a nil
// receiver are no-ops.
type Gauge struct {
	r *Registry
	s *series
}

// Gauge returns the named gauge series, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Gauge{r: r, s: r.lookup(name, help, KindGauge, nil).get(labels)}
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.s.value = v
	g.r.mu.Unlock()
}

// Add moves the gauge by v (either sign).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.s.value += v
	g.r.mu.Unlock()
}

// Value reads the gauge (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.s.value
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative on
// exposition (Prometheus-style le bounds) but stored per-bucket internally.
// Methods on a nil receiver are no-ops.
type Histogram struct {
	r      *Registry
	f      *family
	s      *series
	bounds []float64
}

// Histogram returns the named histogram series with the given ascending
// upper bounds, creating it on first use. The bucket layout is fixed by the
// first registration; later calls for the same name reuse it (their bounds
// argument is ignored), so one family's series always share a layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, KindHistogram, append([]float64(nil), bounds...))
	return &Histogram{r: r, f: f, s: f.get(labels), bounds: f.bounds}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	h.s.sum += v
	h.s.n++
	for i, b := range h.bounds {
		if v <= b {
			h.s.counts[i]++
			return
		}
	}
	// Above every bound: only the implicit +Inf bucket (the total count n)
	// sees it.
}

// Count reads the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.n
}

// Sum reads the sum of observations (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.sum
}

// LinearBuckets returns count ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	if count <= 0 || width <= 0 {
		panic("telemetry: linear buckets need positive width and count")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count ascending bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count <= 0 || start <= 0 || factor <= 1 {
		panic("telemetry: exponential buckets need start>0, factor>1, count>0")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Seconds converts a virtual duration to the float seconds the exposition
// uses as its base unit for time series.
func Seconds(d sim.Duration) float64 { return float64(d) / float64(sim.Second) }

// Set bundles a Registry, a Journal and a span Tracer on a shared clock —
// the unit a subsystem accepts to become observable. A nil *Set (and nil
// fields) turns every instrumentation site into a no-op.
type Set struct {
	Reg     *Registry
	Journal *Journal
	Trace   *span.Tracer
}

// NewSet builds a registry, a journal bounded at journalCap events, and a
// span tracer minting IDs from seed, all on the same clock. The journal's
// drop-newest count is wired to the telemetry_journal_dropped_total counter
// so silent event loss is visible in the exposition.
func NewSet(clock Clock, journalCap int, seed int64) *Set {
	s := &Set{
		Reg:     NewRegistry(clock),
		Journal: NewJournal(clock, journalCap),
		Trace:   span.NewTracer(span.Clock(clock), seed, 0),
	}
	dropped := s.Reg.Counter("telemetry_journal_dropped_total",
		"journal events rejected after the cap was reached (drop-newest policy)", nil)
	s.Journal.OnDrop(dropped.Inc)
	return s
}

// Registry returns the set's registry; nil-safe.
func (s *Set) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Reg
}

// Events returns the set's journal; nil-safe.
func (s *Set) Events() *Journal {
	if s == nil {
		return nil
	}
	return s.Journal
}

// Spans returns the set's span tracer; nil-safe (a nil tracer is itself a
// valid no-op sink, so instrumentation can call s.Spans().Start(...)
// unconditionally).
func (s *Set) Spans() *span.Tracer {
	if s == nil {
		return nil
	}
	return s.Trace
}
