package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"plugvolt/internal/sim"
)

func testClock(t *sim.Time) Clock { return func() sim.Time { return *t } }

func TestCounterGaugeBasics(t *testing.T) {
	now := sim.Time(0)
	r := NewRegistry(testClock(&now))
	c := r.Counter("polls_total", "polls", Labels{"core": "0"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter %v", got)
	}
	// Same name+labels resolves to the same series.
	if got := r.Counter("polls_total", "polls", Labels{"core": "0"}).Value(); got != 3 {
		t.Fatalf("re-lookup %v", got)
	}
	// Different labels are a distinct series.
	r.Counter("polls_total", "polls", Labels{"core": "1"}).Inc()
	snap := r.Snapshot()
	if got := snap.Total("polls_total"); got != 4 {
		t.Fatalf("total %v", got)
	}
	if got := snap.Value("polls_total", Labels{"core": "1"}); got != 1 {
		t.Fatalf("core 1 %v", got)
	}

	g := r.Gauge("stolen_seconds", "stolen", nil)
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge %v", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge did not panic")
		}
	}()
	r.Gauge("x", "", nil)
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "", nil)
	c.Inc()
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter has value")
	}
	g := r.Gauge("b", "", nil)
	g.Set(1)
	g.Add(1)
	h := r.Histogram("c", "", []float64{1}, nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	var j *Journal
	j.Emit("x", nil)
	if j.Len() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal recorded")
	}
	if err := j.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var s *Set
	if s.Registry() != nil || s.Events() != nil {
		t.Fatal("nil set components non-nil")
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 5}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 16 {
		t.Fatalf("sum %v", h.Sum())
	}
	snap := r.Snapshot()
	ss := snap.Find("lat_seconds").Series[0]
	want := []uint64{2, 3, 4} // cumulative per le bound; +Inf = 5
	for i, b := range ss.Buckets {
		if b.Cumulative != want[i] {
			t.Fatalf("bucket %d: %d != %d", i, b.Cumulative, want[i])
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("linear %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exp %v", exp)
	}
}

func TestSnapshotDeterministicRendering(t *testing.T) {
	build := func() *Snapshot {
		now := sim.Time(42 * sim.Microsecond)
		r := NewRegistry(testClock(&now))
		// Insertion order scrambled relative to name/label order on purpose.
		r.Counter("z_total", "zs", Labels{"b": "2", "a": "1"}).Add(7)
		r.Counter("z_total", "zs", Labels{"a": "1", "b": "1"}).Add(3)
		r.Gauge("a_gauge", "", nil).Set(1.25)
		h := r.Histogram("m_hist", "", []float64{1, 2}, Labels{"k": "v"})
		h.Observe(0.5)
		h.Observe(9)
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("prometheus rendering not byte-stable")
	}
	j1, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := build().JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("json rendering not byte-stable")
	}
	out := b1.String()
	for _, want := range []string{
		"# snapshot at_ps 42000000",
		"# TYPE z_total counter",
		`z_total{a="1",b="1"} 3`,
		`z_total{a="1",b="2"} 7`,
		"a_gauge 1.25",
		`m_hist_bucket{k="v",le="1"} 1`,
		`m_hist_bucket{k="v",le="+Inf"} 2`,
		`m_hist_sum{k="v"} 9.5`,
		`m_hist_count{k="v"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Series must appear sorted by label signature.
	if strings.Index(out, `b="1"`) > strings.Index(out, `b="2"`) {
		t.Fatal("series not sorted by label signature")
	}
}

func TestDiff(t *testing.T) {
	now := sim.Time(0)
	r := NewRegistry(testClock(&now))
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h", "", []float64{1}, nil)
	c.Add(5)
	g.Set(10)
	h.Observe(0.5)
	before := r.Snapshot()
	c.Add(3)
	g.Set(4)
	h.Observe(0.5)
	h.Observe(2)
	now = 7 * sim.Second
	after := r.Snapshot()
	d := Diff(before, after)
	if d.AtPS != int64(7*sim.Second) {
		t.Fatalf("diff at %d", d.AtPS)
	}
	if got := d.Value("c_total", nil); got != 3 {
		t.Fatalf("counter delta %v", got)
	}
	if got := d.Value("g", nil); got != 4 {
		t.Fatalf("gauge after-value %v", got)
	}
	hs := d.Find("h").Series[0]
	if hs.Count != 2 || hs.Sum != 2.5 {
		t.Fatalf("histogram delta count=%d sum=%v", hs.Count, hs.Sum)
	}
	if hs.Buckets[0].Cumulative != 1 {
		t.Fatalf("bucket delta %d", hs.Buckets[0].Cumulative)
	}
}

func TestJournalBoundedAndOrdered(t *testing.T) {
	now := sim.Time(0)
	j := NewJournal(testClock(&now), 3)
	for i := 0; i < 5; i++ {
		now = sim.Time(i) * sim.Microsecond
		j.Emit("tick", map[string]any{"i": i})
	}
	if j.Len() != 3 {
		t.Fatalf("len %d", j.Len())
	}
	if j.Dropped() != 2 {
		t.Fatalf("dropped %d", j.Dropped())
	}
	if j.Cap() != 3 {
		t.Fatalf("cap %d", j.Cap())
	}
	ev := j.Events()
	for i, e := range ev {
		if e.At != sim.Time(i)*sim.Microsecond {
			t.Fatalf("event %d at %v", i, e.At)
		}
	}
	if got := len(j.OfType("tick")); got != 3 {
		t.Fatalf("of-type %d", got)
	}
	if got := len(j.OfType("absent")); got != 0 {
		t.Fatalf("of-type absent %d", got)
	}
}

func TestJournalJSONLDeterministic(t *testing.T) {
	render := func() string {
		now := sim.Time(5 * sim.Microsecond)
		j := NewJournal(testClock(&now), 0)
		j.Emit("guard_intervention", map[string]any{
			"core": 1, "offset_mv": -135, "freq_khz": 3600000, "safe_mv": 0,
		})
		var sb strings.Builder
		if err := j.WriteJSONL(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("jsonl not byte-stable")
	}
	want := `{"at_ps":5000000,"type":"guard_intervention","core":1,"freq_khz":3600000,"offset_mv":-135,"safe_mv":0}` + "\n"
	if a != want {
		t.Fatalf("jsonl %q != %q", a, want)
	}
}

func TestFloorBin(t *testing.T) {
	cases := []struct {
		v     float64
		width int
		want  int
	}{
		{1005, 10, 1000},
		{9.7, 10, 0},
		{0, 10, 0},
		{-0.5, 10, -10}, // truncation bug would put this in bin 0
		{-5, 10, -10},
		{-10, 10, -10},
		{-10.5, 10, -20},
		{-135, 5, -135},
		{-137, 5, -140},
	}
	for _, c := range cases {
		if got := FloorBin(c.v, c.width); got != c.want {
			t.Errorf("FloorBin(%v,%d) = %d, want %d", c.v, c.width, got, c.want)
		}
	}
}

func TestBins(t *testing.T) {
	if _, err := NewBins(0); err == nil {
		t.Fatal("zero width accepted")
	}
	b, err := NewBins(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-5, -15, 5, 5.5, 25} {
		b.Observe(v)
	}
	bins, counts := b.Snapshot()
	if b.Count() != 5 {
		t.Fatalf("count %d", b.Count())
	}
	wantBins := []int{-20, -10, 0, 20}
	if len(bins) != len(wantBins) {
		t.Fatalf("bins %v", bins)
	}
	for i, w := range wantBins {
		if bins[i] != w {
			t.Fatalf("bins %v != %v", bins, wantBins)
		}
	}
	if counts[-10] != 1 || counts[0] != 2 || counts[-20] != 1 || counts[20] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestSetConstruction(t *testing.T) {
	now := sim.Time(0)
	s := NewSet(testClock(&now), 8, 1)
	if s.Registry() == nil || s.Events() == nil || s.Spans() == nil {
		t.Fatal("set components nil")
	}
	if s.Events().Cap() != 8 {
		t.Fatalf("journal cap %d", s.Events().Cap())
	}
	if Seconds(1500*sim.Millisecond) != 1.5 {
		t.Fatal("Seconds conversion")
	}
}

// TestJournalExactCapacityBoundary pins down the off-by-one surface of the
// drop-newest policy: the cap-th Emit is retained, Full() flips exactly
// there (not one early), and every rejection after the flip — and only
// those — is counted and reported via OnDrop.
func TestJournalExactCapacityBoundary(t *testing.T) {
	const cap = 4
	now := sim.Time(0)
	j := NewJournal(testClock(&now), cap)

	var dropCB int
	j.OnDrop(func() { dropCB++ })

	// Fill to exactly cap. At every step short of cap the journal must not
	// report full — a premature Full() would make hot paths suppress events
	// the journal still has room for.
	for i := 0; i < cap; i++ {
		if j.Full() {
			t.Fatalf("full at len %d, cap %d", j.Len(), cap)
		}
		now = sim.Time(i) * sim.Microsecond
		j.Emit("tick", map[string]any{"i": i})
	}
	if j.Len() != cap {
		t.Fatalf("len %d after filling to cap %d", j.Len(), cap)
	}
	if !j.Full() {
		t.Fatal("not full at exactly cap")
	}
	if j.Dropped() != 0 || dropCB != 0 {
		t.Fatalf("drops before the cap was exceeded: counter %d, callback %d", j.Dropped(), dropCB)
	}

	// The first over-cap Emit is rejected, keeping the oldest history.
	j.Emit("over", map[string]any{"i": cap})
	if j.Len() != cap {
		t.Fatalf("len %d after over-cap emit", j.Len())
	}
	if j.Dropped() != 1 || dropCB != 1 {
		t.Fatalf("one rejection, counter %d, callback %d", j.Dropped(), dropCB)
	}
	if got := len(j.OfType("over")); got != 0 {
		t.Fatalf("over-cap event retained: %d", got)
	}

	// The retained window is the exact prefix: events 0..cap-1 in order.
	for i, e := range j.Events() {
		if e.Fields["i"] != i {
			t.Fatalf("retained event %d carries i=%v; drop-newest must keep the opening", i, e.Fields["i"])
		}
	}

	// Counter and callback stay in lockstep across further rejections.
	for i := 0; i < 3; i++ {
		j.Emit("over", nil)
	}
	if j.Dropped() != 4 || dropCB != 4 {
		t.Fatalf("counter %d, callback %d after 4 total rejections", j.Dropped(), dropCB)
	}
}

// TestJournalCapOneAndDefault: the degenerate smallest journal still obeys
// the boundary contract, and a non-positive cap selects the default.
func TestJournalCapOneAndDefault(t *testing.T) {
	now := sim.Time(0)
	j := NewJournal(testClock(&now), 1)
	if j.Full() {
		t.Fatal("empty cap-1 journal reports full")
	}
	j.Emit("only", nil)
	if !j.Full() || j.Len() != 1 || j.Dropped() != 0 {
		t.Fatalf("after one emit: full=%v len=%d dropped=%d", j.Full(), j.Len(), j.Dropped())
	}
	j.Emit("rejected", nil)
	if j.Len() != 1 || j.Dropped() != 1 {
		t.Fatalf("after rejection: len=%d dropped=%d", j.Len(), j.Dropped())
	}
	if ev := j.Events(); len(ev) != 1 || ev[0].Type != "only" {
		t.Fatalf("retained %+v", ev)
	}

	for _, cap := range []int{0, -7} {
		if got := NewJournal(testClock(&now), cap).Cap(); got != DefaultJournalCap {
			t.Fatalf("cap %d selected %d, want DefaultJournalCap", cap, got)
		}
	}
}
