package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BucketCount is one histogram bucket in a snapshot: the upper bound and the
// cumulative count of observations <= that bound (Prometheus le semantics).
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Cumulative uint64  `json:"count"`
}

// SeriesSnapshot is one labeled series frozen at snapshot time.
type SeriesSnapshot struct {
	Labels Labels `json:"labels,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value"`
	// Count/Sum/Buckets carry histograms.
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`

	sig string // cached label signature for sorting/diffing
}

// MetricSnapshot is one metric family frozen at snapshot time, series sorted
// by label signature.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   Kind             `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is the full registry state at one virtual instant, families
// sorted by name. Identically-seeded runs produce byte-identical
// WritePrometheus/JSON renderings of their snapshots (worker-labeled series
// excepted; see the package comment).
type Snapshot struct {
	AtPS    int64            `json:"at_ps"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot freezes the registry. Safe on a nil registry (empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	snap.AtPS = int64(r.now())
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.fams[n]
		m := MetricSnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			ss := SeriesSnapshot{Labels: s.labels.clone(), sig: sig}
			if f.kind == KindHistogram {
				ss.Count = s.n
				ss.Sum = s.sum
				var cum uint64
				for i, b := range f.bounds {
					cum += s.counts[i]
					ss.Buckets = append(ss.Buckets, BucketCount{UpperBound: b, Cumulative: cum})
				}
			} else {
				ss.Value = s.value
			}
			m.Series = append(m.Series, ss)
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// Find returns the named family's snapshot, or nil.
func (s *Snapshot) Find(name string) *MetricSnapshot {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// Value returns the scalar of the series matching labels (counter or gauge),
// or 0 if absent.
func (s *Snapshot) Value(name string, labels Labels) float64 {
	m := s.Find(name)
	if m == nil {
		return 0
	}
	sig := labels.signature()
	for _, ss := range m.Series {
		if ss.Labels.signature() == sig {
			return ss.Value
		}
	}
	return 0
}

// Total sums the scalar over every series of the named family.
func (s *Snapshot) Total(name string) float64 {
	m := s.Find(name)
	if m == nil {
		return 0
	}
	var t float64
	for _, ss := range m.Series {
		t += ss.Value
	}
	return t
}

// formatFloat renders floats the same way everywhere so expositions are
// byte-stable: integers without a fraction, everything else in Go's
// shortest-repr 'g' form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set ({k="v",...}) sorted by key, with the
// optional extra pair appended (used for histogram le bounds).
func promLabels(l Labels, extraKey, extraVal string) string {
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, l[k]))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraKey, extraVal))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (HELP/TYPE comments, histogram _bucket/_sum/_count expansion).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# snapshot at_ps %d\n", s.AtPS); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		for _, ss := range m.Series {
			if m.Kind == KindHistogram {
				for _, b := range ss.Buckets {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name,
						promLabels(ss.Labels, "le", formatFloat(b.UpperBound)), b.Cumulative); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name,
					promLabels(ss.Labels, "le", "+Inf"), ss.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name,
					promLabels(ss.Labels, "", ""), formatFloat(ss.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name,
					promLabels(ss.Labels, "", ""), ss.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name,
				promLabels(ss.Labels, "", ""), formatFloat(ss.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSON renders the snapshot as deterministic indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Diff returns after minus before: counters and histograms as deltas,
// gauges at their after value. Series present only in after are taken
// whole; series that vanished are omitted — matching how Table-2-style
// overhead attribution brackets a workload between two snapshots.
func Diff(before, after *Snapshot) *Snapshot {
	out := &Snapshot{AtPS: after.AtPS}
	for _, am := range after.Metrics {
		bm := before.Find(am.Name)
		dm := MetricSnapshot{Name: am.Name, Help: am.Help, Kind: am.Kind}
		for _, as := range am.Series {
			ds := as
			if bm != nil && am.Kind != KindGauge {
				if bs := findSeries(bm, as.Labels); bs != nil {
					ds.Value = as.Value - bs.Value
					ds.Sum = as.Sum - bs.Sum
					ds.Count = as.Count - bs.Count
					ds.Buckets = nil
					for i, b := range as.Buckets {
						prev := uint64(0)
						if i < len(bs.Buckets) {
							prev = bs.Buckets[i].Cumulative
						}
						ds.Buckets = append(ds.Buckets, BucketCount{
							UpperBound: b.UpperBound, Cumulative: b.Cumulative - prev})
					}
				}
			}
			dm.Series = append(dm.Series, ds)
		}
		out.Metrics = append(out.Metrics, dm)
	}
	return out
}

func findSeries(m *MetricSnapshot, labels Labels) *SeriesSnapshot {
	sig := labels.signature()
	for i := range m.Series {
		if m.Series[i].Labels.signature() == sig {
			return &m.Series[i]
		}
	}
	return nil
}

// MergeSnapshots folds several snapshots — one per fleet machine — into a
// single aggregate. Matching series (same family name, same label signature)
// sum: counters and gauges add their values (fleet totals such as stolen
// seconds or poll counts), histograms add counts, sums and per-bucket
// cumulative counts. Unmatched series pass through. Families merge by name
// and series by signature, and the output is emitted with families sorted by
// name and series by signature, so the merged snapshot depends only on the
// values in the inputs — all sums are commutative — never on how the inputs
// were produced or scheduled. AtPS is the maximum input timestamp.
//
// A name carrying two different kinds, or two histogram series of one family
// with different bucket layouts, is an error: those would silently corrupt
// the aggregate.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	type mergeFam struct {
		m   MetricSnapshot
		idx map[string]int // label signature -> index into m.Series
	}
	fams := map[string]*mergeFam{}
	out := &Snapshot{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.AtPS > out.AtPS {
			out.AtPS = s.AtPS
		}
		for _, m := range s.Metrics {
			f := fams[m.Name]
			if f == nil {
				f = &mergeFam{m: MetricSnapshot{Name: m.Name, Help: m.Help, Kind: m.Kind},
					idx: map[string]int{}}
				fams[m.Name] = f
			} else if f.m.Kind != m.Kind {
				return nil, fmt.Errorf("telemetry: merge: metric %q is both %s and %s",
					m.Name, f.m.Kind, m.Kind)
			}
			for _, ss := range m.Series {
				sig := ss.Labels.signature()
				i, ok := f.idx[sig]
				if !ok {
					cp := ss
					cp.Labels = ss.Labels.clone()
					cp.Buckets = append([]BucketCount(nil), ss.Buckets...)
					cp.sig = sig
					f.idx[sig] = len(f.m.Series)
					f.m.Series = append(f.m.Series, cp)
					continue
				}
				dst := &f.m.Series[i]
				dst.Value += ss.Value
				dst.Count += ss.Count
				dst.Sum += ss.Sum
				if len(dst.Buckets) != len(ss.Buckets) {
					return nil, fmt.Errorf("telemetry: merge: metric %q series %s: %d vs %d buckets",
						m.Name, sig, len(dst.Buckets), len(ss.Buckets))
				}
				for b := range ss.Buckets {
					if dst.Buckets[b].UpperBound != ss.Buckets[b].UpperBound {
						return nil, fmt.Errorf("telemetry: merge: metric %q series %s: bucket %d bound %g vs %g",
							m.Name, sig, b, dst.Buckets[b].UpperBound, ss.Buckets[b].UpperBound)
					}
					dst.Buckets[b].Cumulative += ss.Buckets[b].Cumulative
				}
			}
		}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.m.Series, func(i, j int) bool { return f.m.Series[i].sig < f.m.Series[j].sig })
		out.Metrics = append(out.Metrics, f.m)
	}
	return out, nil
}

// DumpMetrics writes the registry's current snapshot in Prometheus text
// form to path ("-" means stdout). The shared implementation behind every
// CLI's -metrics-out flag.
func DumpMetrics(path string, reg *Registry) error {
	return dumpTo(path, func(w io.Writer) error {
		return reg.Snapshot().WritePrometheus(w)
	})
}

// DumpEvents writes the journal as JSONL to path ("-" means stdout) —
// the shared implementation behind every CLI's -events-out flag.
func DumpEvents(path string, j *Journal) error {
	return dumpTo(path, j.WriteJSONL)
}

func dumpTo(path string, render func(io.Writer) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
