package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"plugvolt/internal/sim"
)

// Edge cases of Snapshot diffing: series that appear or disappear between
// the two snapshots, histograms whose bucket layouts disagree, and label
// sets crafted to collide on a naive signature.

func snapClock() Clock {
	now := sim.Time(0)
	return func() sim.Time { return now }
}

func TestDiffSeriesAppearing(t *testing.T) {
	reg := NewRegistry(snapClock())
	reg.Counter("reqs", "", Labels{"core": "0"}).Add(5)
	before := reg.Snapshot()
	// A new series materializes after the bracket opened.
	reg.Counter("reqs", "", Labels{"core": "0"}).Add(2)
	reg.Counter("reqs", "", Labels{"core": "1"}).Add(9)
	after := reg.Snapshot()

	d := Diff(before, after)
	if got := d.Value("reqs", Labels{"core": "0"}); got != 2 {
		t.Errorf("existing series delta = %v, want 2", got)
	}
	// Appearing series are taken whole.
	if got := d.Value("reqs", Labels{"core": "1"}); got != 9 {
		t.Errorf("appearing series = %v, want 9", got)
	}
}

func TestDiffSeriesDisappearing(t *testing.T) {
	// Hand-built snapshots: the registry never drops series, but a bracket
	// across a registry swap (SetTelemetry) can legitimately lose some.
	before := &Snapshot{Metrics: []MetricSnapshot{{
		Name: "reqs", Kind: KindCounter,
		Series: []SeriesSnapshot{
			{Labels: Labels{"core": "0"}, Value: 5},
			{Labels: Labels{"core": "1"}, Value: 7},
		},
	}}}
	after := &Snapshot{Metrics: []MetricSnapshot{{
		Name: "reqs", Kind: KindCounter,
		Series: []SeriesSnapshot{
			{Labels: Labels{"core": "0"}, Value: 6},
		},
	}}}
	d := Diff(before, after)
	m := d.Find("reqs")
	if m == nil || len(m.Series) != 1 {
		t.Fatalf("vanished series must be omitted, got %+v", m)
	}
	if m.Series[0].Value != 1 {
		t.Errorf("surviving series delta = %v, want 1", m.Series[0].Value)
	}
	// A whole family vanishing is likewise omitted rather than inverted.
	after2 := &Snapshot{}
	if d2 := Diff(before, after2); len(d2.Metrics) != 0 {
		t.Errorf("vanished family must be omitted, got %+v", d2.Metrics)
	}
}

func TestDiffHistogramBucketCountMismatch(t *testing.T) {
	mk := func(buckets []BucketCount, count uint64, sum float64) *Snapshot {
		return &Snapshot{Metrics: []MetricSnapshot{{
			Name: "lat", Kind: KindHistogram,
			Series: []SeriesSnapshot{{Count: count, Sum: sum, Buckets: buckets}},
		}}}
	}
	// After has MORE buckets than before (bounds were re-registered wider):
	// the overlap diffs positionally, the extra buckets are taken whole.
	before := mk([]BucketCount{{1, 3}, {2, 5}}, 5, 4)
	after := mk([]BucketCount{{1, 4}, {2, 8}, {4, 9}}, 9, 11)
	d := Diff(before, after)
	got := d.Find("lat").Series[0]
	want := []BucketCount{{1, 1}, {2, 3}, {4, 9}}
	if len(got.Buckets) != len(want) {
		t.Fatalf("buckets %+v, want %+v", got.Buckets, want)
	}
	for i := range want {
		if got.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got.Buckets[i], want[i])
		}
	}
	if got.Count != 4 || got.Sum != 7 {
		t.Errorf("count/sum = %d/%v, want 4/7", got.Count, got.Sum)
	}

	// After has FEWER buckets than before: the after layout wins and no
	// phantom buckets from before leak into the delta.
	d2 := Diff(after, mk([]BucketCount{{1, 5}}, 10, 12))
	got2 := d2.Find("lat").Series[0]
	if len(got2.Buckets) != 1 || got2.Buckets[0] != (BucketCount{1, 1}) {
		t.Errorf("shrunk layout buckets = %+v, want [{1 1}]", got2.Buckets)
	}
}

func TestDiffGaugeTakesAfterValue(t *testing.T) {
	reg := NewRegistry(snapClock())
	g := reg.Gauge("temp", "", nil)
	g.Set(70)
	before := reg.Snapshot()
	g.Set(55)
	d := Diff(before, reg.Snapshot())
	if got := d.Value("temp", nil); got != 55 {
		t.Errorf("gauge diff = %v, want after value 55", got)
	}
}

func TestLabelSignatureCollisionResistance(t *testing.T) {
	// Without key quoting these two sets render the same naive signature
	// `a="1",b="2"`; they must stay distinct series.
	setA := Labels{"a": "1", "b": "2"}
	setB := Labels{`a="1",b`: "2"}
	if setA.signature() == setB.signature() {
		t.Fatalf("signature collision: %q", setA.signature())
	}

	reg := NewRegistry(snapClock())
	reg.Counter("c", "", setA).Add(1)
	reg.Counter("c", "", setB).Add(10)
	snap := reg.Snapshot()
	m := snap.Find("c")
	if m == nil || len(m.Series) != 2 {
		t.Fatalf("collided label sets merged into %+v", m)
	}
	if got := snap.Value("c", setA); got != 1 {
		t.Errorf("setA value = %v, want 1", got)
	}
	if got := snap.Value("c", setB); got != 10 {
		t.Errorf("setB value = %v, want 10", got)
	}
	// And the diff keeps them apart too.
	reg.Counter("c", "", setB).Add(5)
	d := Diff(snap, reg.Snapshot())
	if got := d.Value("c", setB); got != 5 {
		t.Errorf("setB delta = %v, want 5", got)
	}
	if got := d.Value("c", setA); got != 0 {
		t.Errorf("setA delta = %v, want 0", got)
	}
}

func TestDiffValueEscapingInExposition(t *testing.T) {
	// Quotes and commas in label *values* must survive the round trip
	// without forging other series.
	tricky := Labels{"path": `a",b=`}
	reg := NewRegistry(snapClock())
	reg.Counter("hits", "", tricky).Add(3)
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `hits{path="a\",b="} 3`) {
		t.Errorf("tricky value rendered wrong:\n%s", sb.String())
	}
}

// mergeFixture builds a registry snapshot with one counter, one gauge and
// one histogram, scaled by k so merged sums are easy to predict.
func mergeFixture(k float64) *Snapshot {
	r := NewRegistry(func() sim.Time { return sim.Time(int64(k) * 100) })
	r.Counter("polls_total", "", Labels{"core": "0"}).Add(10 * k)
	r.Counter("polls_total", "", Labels{"core": "1"}).Add(1 * k)
	r.Gauge("stolen_seconds", "", nil).Set(2 * k)
	h := r.Histogram("latency", "", []float64{1, 2}, nil)
	for i := 0; i < int(k); i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	return r.Snapshot()
}

func TestMergeSnapshots(t *testing.T) {
	a, b := mergeFixture(1), mergeFixture(3)
	m, err := MergeSnapshots(a, b, nil) // nil inputs are skipped
	if err != nil {
		t.Fatal(err)
	}
	if m.AtPS != 300 {
		t.Errorf("AtPS = %d, want max input 300", m.AtPS)
	}
	if got := m.Value("polls_total", Labels{"core": "0"}); got != 40 {
		t.Errorf("merged counter = %v, want 40", got)
	}
	if got := m.Total("polls_total"); got != 44 {
		t.Errorf("merged counter total = %v, want 44", got)
	}
	if got := m.Value("stolen_seconds", nil); got != 8 {
		t.Errorf("merged gauge = %v, want 8", got)
	}
	hs := m.Find("latency")
	if hs == nil || len(hs.Series) != 1 {
		t.Fatalf("merged histogram missing: %+v", hs)
	}
	s := hs.Series[0]
	if s.Count != 8 || s.Sum != 8 {
		t.Errorf("merged histogram count=%d sum=%v, want 8/8", s.Count, s.Sum)
	}
	if len(s.Buckets) != 2 || s.Buckets[0].Cumulative != 4 || s.Buckets[1].Cumulative != 8 {
		t.Errorf("merged buckets %+v", s.Buckets)
	}

	// Order-invariance: merging (b, a) renders the same bytes as (a, b).
	m2, err := MergeSnapshots(b, a)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := m.JSON()
	j2, _ := m2.JSON()
	if !bytes.Equal(j1, j2) {
		t.Error("merge is input-order sensitive")
	}

	// Series present in only one input pass through whole.
	r := NewRegistry(nil)
	r.Counter("unique_total", "", nil).Add(5)
	m3, err := MergeSnapshots(a, r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got := m3.Value("unique_total", nil); got != 5 {
		t.Errorf("pass-through series = %v, want 5", got)
	}
}

func TestMergeSnapshotsConflicts(t *testing.T) {
	c := NewRegistry(nil)
	c.Counter("x", "", nil).Add(1)
	g := NewRegistry(nil)
	g.Gauge("x", "", nil).Set(1)
	if _, err := MergeSnapshots(c.Snapshot(), g.Snapshot()); err == nil {
		t.Error("kind conflict not rejected")
	}
	h1 := NewRegistry(nil)
	h1.Histogram("h", "", []float64{1}, nil).Observe(0.5)
	h2 := NewRegistry(nil)
	h2.Histogram("h", "", []float64{1, 2}, nil).Observe(0.5)
	if _, err := MergeSnapshots(h1.Snapshot(), h2.Snapshot()); err == nil {
		t.Error("bucket layout mismatch not rejected")
	}
	h3 := NewRegistry(nil)
	h3.Histogram("h", "", []float64{9}, nil).Observe(0.5)
	if _, err := MergeSnapshots(h1.Snapshot(), h3.Snapshot()); err == nil {
		t.Error("bucket bound mismatch not rejected")
	}
}
