package telemetry

import (
	"regexp"
	"strings"
	"testing"
)

// Histogram bucket lines must appear in ascending numeric le order in every
// rendered snapshot — including diffs and merges. The bounds {20, 100, 500}
// are the trap case: lexicographically "100" < "20" < "500", so any code
// path that ever sorted bucket lines (or their le labels) as strings would
// reorder them. Bounds are validated ascending at registration and every
// snapshot/diff/merge path preserves slice order positionally; this test
// pins that contract.
func TestBucketLinesNumericOrderInDiff(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("m_us", "latency", []float64{20, 100, 500}, Labels{"core": "0"})
	h.Observe(10)
	before := r.Snapshot()
	for _, v := range []float64{15, 50, 50, 300, 9999} {
		h.Observe(v)
	}
	after := r.Snapshot()

	leSeq := func(s *Snapshot) []string {
		var sb strings.Builder
		if err := s.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		re := regexp.MustCompile(`m_us_bucket\{core="0",le="([^"]+)"\} (\d+)`)
		var les []string
		for _, m := range re.FindAllStringSubmatch(sb.String(), -1) {
			les = append(les, m[1])
		}
		return les
	}

	want := []string{"20", "100", "500", "+Inf"}
	for name, s := range map[string]*Snapshot{"before": before, "after": after, "diff": Diff(before, after)} {
		got := leSeq(s)
		if len(got) != len(want) {
			t.Fatalf("%s: bucket lines %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: bucket line %d has le=%q, want %q (numeric order, not lexicographic)", name, i, got[i], want[i])
			}
		}
	}

	// The diff's per-bucket deltas must also sit on the right bounds: one
	// new observation <=20, two in (20,100], one in (100,500], one above
	// every bound (only +Inf / Count sees it).
	d := Diff(before, after)
	ds := d.Metrics[0].Series[0]
	wantCum := []uint64{1, 3, 4}
	for i, b := range ds.Buckets {
		if b.Cumulative != wantCum[i] {
			t.Errorf("diff bucket le=%g cumulative %d, want %d", b.UpperBound, b.Cumulative, wantCum[i])
		}
	}
	if ds.Count != 5 {
		t.Errorf("diff count %d, want 5", ds.Count)
	}

	// Merging preserves the same order — the fleet path renders merged
	// snapshots straight to Prometheus text.
	merged, err := MergeSnapshots(after, after)
	if err != nil {
		t.Fatal(err)
	}
	got := leSeq(merged)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merged: bucket line %d has le=%q, want %q", i, got[i], want[i])
		}
	}
}
