// Package report renders the reproduction's figures and tables: the
// safe/unsafe characterization heatmaps of Figs. 2-4 (ASCII and CSV), the
// Table 2 overhead table (text and markdown), and the attack-vs-defense
// matrices of experiments E1/E2.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"plugvolt/internal/attack"
	"plugvolt/internal/core"
	"plugvolt/internal/pstate"
	"plugvolt/internal/spec"
)

// cell glyphs for the characterization heatmap.
const (
	glyphSafe  = '.'
	glyphFault = 'x'
	glyphCrash = '#'
)

// WriteHeatmap renders a Fig. 2/3/4-style map: frequency rows (ascending
// down the page), offset columns (shallow left to deep right), one glyph
// per grid cell, with onset/crash annotations per row.
func WriteHeatmap(w io.Writer, g *core.Grid) error {
	if err := g.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Safe/unsafe characterization — %s (microcode %s), %d imuls/point, seed %d\n",
		g.Model, g.Microcode, g.Iterations, g.Seed)
	fmt.Fprintf(w, "offset axis: %d mV (left) .. %d mV (right), '%c'=safe '%c'=fault '%c'=crash\n\n",
		g.OffsetsMV[0], g.OffsetsMV[len(g.OffsetsMV)-1], glyphSafe, glyphFault, glyphCrash)
	for fi, f := range g.FreqsKHz {
		var sb strings.Builder
		for _, cl := range g.Cells[fi] {
			switch cl {
			case core.Safe:
				sb.WriteRune(glyphSafe)
			case core.Fault:
				sb.WriteRune(glyphFault)
			default:
				sb.WriteRune(glyphCrash)
			}
		}
		onset, hasOnset := g.OnsetMV(f)
		crash, hasCrash := g.CrashMV(f)
		ann := ""
		if hasOnset {
			ann = fmt.Sprintf(" onset %4d mV", onset)
		}
		if hasCrash {
			ann += fmt.Sprintf(", crash %4d mV", crash)
		}
		fmt.Fprintf(w, "%4.1f GHz |%s|%s\n", float64(f)/1e6, sb.String(), ann)
	}
	msv := g.MaximalSafeOffsetMV(0)
	fmt.Fprintf(w, "\nmaximal safe state: %d mV (safe at every frequency); reboots during sweep: %d\n",
		msv, g.Reboots)
	return nil
}

// WriteGridCSV emits the raw grid for external plotting: one line per cell,
// freq_khz,offset_mv,class.
func WriteGridCSV(w io.Writer, g *core.Grid) error {
	if err := g.Validate(); err != nil {
		return err
	}
	fmt.Fprintln(w, "freq_khz,offset_mv,class")
	for fi, f := range g.FreqsKHz {
		for oi, off := range g.OffsetsMV {
			fmt.Fprintf(w, "%d,%d,%s\n", f, off, g.Cells[fi][oi])
		}
	}
	return nil
}

// WriteTable2 renders the regenerated Table 2 with the paper's column
// structure.
func WriteTable2(w io.Writer, t *spec.Table2) {
	fmt.Fprintf(w, "Table 2 — polling countermeasure overhead on %s (SPECrate2017 stand-ins)\n\n", t.Model)
	fmt.Fprintf(w, "%-17s %12s %12s %10s %12s %12s %10s\n",
		"Benchmark", "Base w/o", "Base w/", "Slowdown", "Peak w/o", "Peak w/", "Slowdown")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-17s %12.2f %12.2f %9.2f%% %12.2f %12.2f %9.2f%%\n",
			r.Benchmark, r.BaseWithout, r.BaseWith, r.BaseSlowdownPct,
			r.PeakWithout, r.PeakWith, r.PeakSlowdownPct)
	}
	fmt.Fprintf(w, "\nmean |slowdown|: base %.2f%%, peak %.2f%%, overall %.2f%% (paper reports 0.28%%)\n",
		t.MeanAbsBasePct, t.MeanAbsPeakPct, t.MeanAbsPct)
	fmt.Fprintf(w, "direct polling cost on pinned core: %.3f%%\n", t.DirectOverheadPct)
}

// WriteTable2Markdown renders Table 2 as a markdown table (for
// EXPERIMENTS.md).
func WriteTable2Markdown(w io.Writer, t *spec.Table2) {
	fmt.Fprintf(w, "| Benchmark | Base w/o | Base w/ | Slowdown | Peak w/o | Peak w/ | Slowdown |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|\n")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %.2f%% | %.2f | %.2f | %.2f%% |\n",
			r.Benchmark, r.BaseWithout, r.BaseWith, r.BaseSlowdownPct,
			r.PeakWithout, r.PeakWith, r.PeakSlowdownPct)
	}
	fmt.Fprintf(w, "\nMean |slowdown|: **%.2f%%** (paper: 0.28%%)\n", t.MeanAbsPct)
}

// WriteAttackResults renders an E1-style effectiveness table.
func WriteAttackResults(w io.Writer, results []*attack.Result) {
	fmt.Fprintf(w, "%-12s %-30s %-12s %-10s %8s %8s %8s %8s\n",
		"Attack", "Defense", "CPU", "Outcome", "Attempts", "Writes", "Blocked", "Faults")
	for _, r := range results {
		outcome := "defeated"
		if r.Succeeded {
			outcome = "SUCCESS"
		}
		fmt.Fprintf(w, "%-12s %-30s %-12s %-10s %8d %8d %8d %8d\n",
			r.Attack, r.Defense, r.Model, outcome, r.Attempts, r.MailboxWrites,
			r.BlockedWrites, r.FaultsObserved)
	}
}

// DefenseProperty is one row of the E2 comparison matrix (the qualitative
// columns the paper argues in Secs. 1 and 5).
type DefenseProperty struct {
	Defense          string
	PreventsFaults   bool
	AllowsBenignDVFS bool
	SurvivesStepping bool
	HardwareCapable  bool
}

// WriteDefenseMatrix renders the qualitative comparison.
func WriteDefenseMatrix(w io.Writer, rows []DefenseProperty) {
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintf(w, "%-32s %-16s %-18s %-20s %-16s\n",
		"Defense", "Prevents faults", "Benign DVFS OK", "Survives stepping", "HW-deployable")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %-16s %-18s %-20s %-16s\n",
			r.Defense, yn(r.PreventsFaults), yn(r.AllowsBenignDVFS),
			yn(r.SurvivesStepping), yn(r.HardwareCapable))
	}
}

// TurnaroundRow is one row of the E3 turnaround comparison.
type TurnaroundRow struct {
	Deployment string
	// WorstCase is a human-readable worst-case unsafe-state dwell bound.
	WorstCase string
	// Note explains the bound.
	Note string
}

// WriteTurnaround renders the E3 table.
func WriteTurnaround(w io.Writer, rows []TurnaroundRow) {
	fmt.Fprintf(w, "%-28s %-18s %s\n", "Deployment", "Worst-case window", "Why")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-18s %s\n", r.Deployment, r.WorstCase, r.Note)
	}
}

// OnsetCurve labels a grid for curve comparison (models or classes).
type OnsetCurve struct {
	Label string
	Grid  *core.Grid
}

// WriteOnsetCurves tabulates fault-onset offsets against frequency for
// several characterizations side by side — the combined Figs. 2-4 view, or
// a per-instruction-class comparison.
func WriteOnsetCurves(w io.Writer, curves []OnsetCurve) error {
	if len(curves) == 0 {
		return fmt.Errorf("report: no curves")
	}
	// Union of frequencies, ascending.
	freqSet := map[int]bool{}
	for _, c := range curves {
		if err := c.Grid.Validate(); err != nil {
			return fmt.Errorf("report: curve %q: %w", c.Label, err)
		}
		for _, f := range c.Grid.FreqsKHz {
			freqSet[f] = true
		}
	}
	freqs := make([]int, 0, len(freqSet))
	for f := range freqSet {
		freqs = append(freqs, f)
	}
	sort.Ints(freqs)

	fmt.Fprintf(w, "%-10s", "GHz")
	for _, c := range curves {
		fmt.Fprintf(w, " %14s", c.Label)
	}
	fmt.Fprintln(w, "   (fault onset, mV)")
	for _, f := range freqs {
		fmt.Fprintf(w, "%-10.1f", float64(f)/1e6)
		for _, c := range curves {
			if on, ok := c.Grid.OnsetMV(f); ok {
				fmt.Fprintf(w, " %14d", on)
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteOnsetSpreads tabulates run-to-run onset variation (multi-seed
// characterization), the measured basis for the guard margin.
func WriteOnsetSpreads(w io.Writer, spreads []core.OnsetSpread) {
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %6s\n", "GHz", "min mV", "max mV", "mean", "std", "runs")
	for _, sp := range spreads {
		fmt.Fprintf(w, "%-10.1f %8d %8d %8.1f %8.2f %6d\n",
			float64(sp.FreqKHz)/1e6, sp.MinMV, sp.MaxMV, sp.MeanMV, sp.StdMV, sp.Runs)
	}
}

// WriteCStateResidency tabulates one core's idle-state accounting.
func WriteCStateResidency(w io.Writer, gov *pstate.IdleGovernor, coreIdx int) {
	res := gov.Residency(coreIdx)
	entries := gov.Entries(coreIdx)
	fmt.Fprintf(w, "core %d idle residency:\n", coreIdx)
	for _, name := range pstate.SortedNames(res) {
		fmt.Fprintf(w, "  %-5s %12v  (%d entries)\n", name, res[name], entries[name])
	}
}
