package report

import (
	"strings"
	"testing"

	"plugvolt/internal/attack"
	"plugvolt/internal/core"
	"plugvolt/internal/pstate"
	"plugvolt/internal/sim"
	"plugvolt/internal/spec"
)

func testGrid() *core.Grid {
	g := &core.Grid{
		Model:      "Test Lake",
		Microcode:  "0x1",
		Iterations: 1000,
		FreqsKHz:   []int{1_000_000, 2_000_000},
		OffsetsMV:  []int{-1, -2, -3, -4},
		Cells: [][]core.Classification{
			{core.Safe, core.Safe, core.Fault, core.Crash},
			{core.Safe, core.Fault, core.Fault, core.Crash},
		},
	}
	return g
}

func TestWriteHeatmap(t *testing.T) {
	var sb strings.Builder
	if err := WriteHeatmap(&sb, testGrid()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Test Lake",
		"1.0 GHz |..x#|",
		"2.0 GHz |.xx#|",
		"onset   -3 mV",
		"onset   -2 mV",
		"crash   -4 mV",
		"maximal safe state: -1 mV",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
}

func TestWriteHeatmapInvalidGrid(t *testing.T) {
	var sb strings.Builder
	if err := WriteHeatmap(&sb, &core.Grid{}); err == nil {
		t.Fatal("invalid grid rendered")
	}
}

func TestWriteGridCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteGridCSV(&sb, testGrid()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "freq_khz,offset_mv,class" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 1+2*4 {
		t.Fatalf("csv rows %d", len(lines))
	}
	if !strings.Contains(out, "1000000,-3,fault") {
		t.Fatalf("missing cell row:\n%s", out)
	}
	if err := WriteGridCSV(&sb, &core.Grid{}); err == nil {
		t.Fatal("invalid grid rendered")
	}
}

func TestWriteTable2Formats(t *testing.T) {
	tab := &spec.Table2{
		Model: "Comet Lake",
		Rows: []spec.Table2Row{
			{Benchmark: "503.bwaves_r", BaseWithout: 628.59, BaseWith: 628.9,
				BaseSlowdownPct: 0.05, PeakWithout: 604.21, PeakWith: 606.84, PeakSlowdownPct: 0.43},
		},
		MeanAbsBasePct: 0.3, MeanAbsPeakPct: 0.25, MeanAbsPct: 0.275,
		DirectOverheadPct: 0.31,
	}
	var sb strings.Builder
	WriteTable2(&sb, tab)
	out := sb.String()
	for _, want := range []string{"Comet Lake", "503.bwaves_r", "628.59", "0.28%", "0.310%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	WriteTable2Markdown(&sb, tab)
	md := sb.String()
	if !strings.Contains(md, "| 503.bwaves_r |") || !strings.Contains(md, "**0.28%**") {
		t.Fatalf("markdown table malformed:\n%s", md)
	}
}

func TestWriteAttackResults(t *testing.T) {
	var sb strings.Builder
	WriteAttackResults(&sb, []*attack.Result{
		{Attack: "plundervolt", Defense: "none", Model: "Sky Lake", Succeeded: true, Attempts: 3},
		{Attack: "plundervolt", Defense: "polling (this work)", Model: "Sky Lake"},
	})
	out := sb.String()
	if !strings.Contains(out, "SUCCESS") || !strings.Contains(out, "defeated") {
		t.Fatalf("attack table outcomes missing:\n%s", out)
	}
}

func TestWriteDefenseMatrixAndTurnaround(t *testing.T) {
	var sb strings.Builder
	WriteDefenseMatrix(&sb, []DefenseProperty{
		{Defense: "polling (this work)", PreventsFaults: true, AllowsBenignDVFS: true, SurvivesStepping: true},
		{Defense: "access-control", PreventsFaults: true},
	})
	out := sb.String()
	if !strings.Contains(out, "polling (this work)") || !strings.Contains(out, "yes") || !strings.Contains(out, "no") {
		t.Fatalf("matrix malformed:\n%s", out)
	}
	sb.Reset()
	WriteTurnaround(&sb, []TurnaroundRow{{Deployment: "kernel module", WorstCase: "120us", Note: "poll + VR"}})
	if !strings.Contains(sb.String(), "kernel module") {
		t.Fatal("turnaround table malformed")
	}
}

func TestWriteOnsetCurves(t *testing.T) {
	var sb strings.Builder
	curves := []OnsetCurve{
		{Label: "imul", Grid: testGrid()},
		{Label: "aes", Grid: testGrid()},
	}
	if err := WriteOnsetCurves(&sb, curves); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"imul", "aes", "1.0", "2.0", "-3", "-2"} {
		if !strings.Contains(out, want) {
			t.Errorf("curves missing %q:\n%s", want, out)
		}
	}
	if err := WriteOnsetCurves(&sb, nil); err == nil {
		t.Fatal("empty curves accepted")
	}
	bad := []OnsetCurve{{Label: "x", Grid: &core.Grid{}}}
	if err := WriteOnsetCurves(&sb, bad); err == nil {
		t.Fatal("invalid grid accepted")
	}
	// All-safe grid renders "-" cells rather than failing.
	safe := testGrid()
	for fi := range safe.Cells {
		for oi := range safe.Cells[fi] {
			safe.Cells[fi][oi] = core.Safe
		}
	}
	sb.Reset()
	if err := WriteOnsetCurves(&sb, []OnsetCurve{{Label: "quiet", Grid: safe}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-\n") && !strings.Contains(sb.String(), "- ") {
		t.Fatalf("missing dash cells:\n%s", sb.String())
	}
}

func TestWriteOnsetSpreads(t *testing.T) {
	var sb strings.Builder
	WriteOnsetSpreads(&sb, []core.OnsetSpread{
		{FreqKHz: 3_200_000, MinMV: -120, MaxMV: -110, MeanMV: -115, StdMV: 4.1, Runs: 3},
	})
	out := sb.String()
	if !strings.Contains(out, "3.2") || !strings.Contains(out, "-120") || !strings.Contains(out, "4.10") {
		t.Fatalf("spreads table malformed:\n%s", out)
	}
}

func TestWriteCStateResidency(t *testing.T) {
	s := sim.New(1)
	gov, err := pstate.NewIdleGovernor(s, 2, pstate.DefaultCStates())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gov.Enter(0, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.RunFor(3 * sim.Millisecond)
	if _, err := gov.Exit(0); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteCStateResidency(&sb, gov, 0)
	out := sb.String()
	if !strings.Contains(out, "C6") || !strings.Contains(out, "1 entries") {
		t.Fatalf("residency table malformed:\n%s", out)
	}
}
