package attack

import (
	"testing"

	"plugvolt/internal/core"
	"plugvolt/internal/defense"
)

func TestVoltPillagerSucceedsWithoutTouchingMSRs(t *testing.T) {
	env := newEnv(t, "skylake", 51)
	a := DefaultVoltPillager()
	res, err := a.Run(env, "none")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("VoltPillager failed undefended: %s (%s)", res, res.Notes)
	}
	if res.MailboxWrites != 0 || res.BlockedWrites != 0 {
		t.Fatalf("hardware attack issued MSR writes: %s", res)
	}
}

func TestVoltPillagerDefeatsAllSoftwareDefenses(t *testing.T) {
	// The honest boundary of the paper's threat model: MSR-watching
	// defenses never see the SVID injection.
	env := newEnv(t, "skylake", 52)
	grid := characterizeEnv(t, env)
	defsEnv := env
	pol, err := defense.NewPolling(grid.UnsafeSet(), env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	msv := grid.MaximalSafeOffsetMV(20)
	cases := []defense.Countermeasure{
		pol,
		&defense.Microcode{MaxSafeOffsetMV: msv},
		&defense.ClampMSR{LimitMV: msv},
	}
	for _, cm := range cases {
		if err := cm.Install(defsEnv); err != nil {
			t.Fatalf("%s: %v", cm.Name(), err)
		}
		res, err := DefaultVoltPillager().Run(defsEnv, cm.Name())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Succeeded {
			t.Errorf("%s unexpectedly stopped the hardware attack: %s", cm.Name(), res)
		}
		if err := cm.Uninstall(defsEnv); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrossCheckGuardDetectsVoltPillager(t *testing.T) {
	env := newEnv(t, "skylake", 53)
	grid := characterizeEnv(t, env)
	cfg := core.DefaultGuardConfig()
	cfg.VoltageCrossCheck = true
	cfg.ExpectedMV = env.Platform.Spec.NominalMV
	pol, err := defense.NewPolling(grid.UnsafeSet(), env.Platform.Spec.BusMHz, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env); err != nil {
		t.Fatal(err)
	}
	res, err := DefaultVoltPillager().Run(env, pol.Name())
	if err != nil {
		t.Fatal(err)
	}
	// Detection, not prevention: the attack still lands...
	if !res.Succeeded {
		t.Fatalf("software guard claimed to stop a hardware injector: %s", res)
	}
	// ...but the anomaly is on record for alerting/evacuation.
	if pol.Guard.HardwareAnomalies == 0 {
		t.Fatal("cross-check never flagged the out-of-band rail deficit")
	}
	if pol.Guard.LastAnomaly == 0 {
		t.Fatal("anomaly time not recorded")
	}
}

func TestCrossCheckQuietDuringRegisterAttacks(t *testing.T) {
	// Regression guard: the recovery transient after an ordinary register
	// intervention must not raise hardware anomalies (persistence filter).
	env := newEnv(t, "skylake", 54)
	grid := characterizeEnv(t, env)
	cfg := core.DefaultGuardConfig()
	cfg.VoltageCrossCheck = true
	cfg.ExpectedMV = env.Platform.Spec.NominalMV
	pol, err := defense.NewPolling(grid.UnsafeSet(), env.Platform.Spec.BusMHz, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env); err != nil {
		t.Fatal(err)
	}
	res, err := DefaultPlundervolt(54).Run(env, pol.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatalf("guard lost to plundervolt: %s", res)
	}
	if pol.Guard.Interventions == 0 {
		t.Fatal("no interventions — campaign did not exercise the guard")
	}
	if pol.Guard.HardwareAnomalies != 0 {
		t.Fatalf("%d false hardware anomalies during a register attack", pol.Guard.HardwareAnomalies)
	}
}

func TestCrossCheckConfigValidation(t *testing.T) {
	u := &core.UnsafeSet{FloorMV: -300}
	cfg := core.DefaultGuardConfig()
	cfg.VoltageCrossCheck = true // no ExpectedMV
	if _, err := core.NewGuard(u, 100, cfg); err == nil {
		t.Fatal("cross-check without ExpectedMV accepted")
	}
	cfg.ExpectedMV = func(uint8) float64 { return 1000 }
	cfg.CrossCheckSlackMV = -1
	if _, err := core.NewGuard(u, 100, cfg); err == nil {
		t.Fatal("negative slack accepted")
	}
}

func TestPlundervoltAESSucceedsUndefended(t *testing.T) {
	env := newEnv(t, "skylake", 81)
	a := DefaultPlundervoltAES(81)
	res, err := a.Run(env, "none")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded || !res.KeyRecovered {
		t.Fatalf("AES Plundervolt failed undefended: %s (%s)", res, res.Notes)
	}
}

func TestPlundervoltAESDefeatedByGuard(t *testing.T) {
	env := newEnv(t, "skylake", 82)
	grid := characterizeEnv(t, env)
	pol, err := defense.NewPolling(grid.UnsafeSet(), env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env); err != nil {
		t.Fatal(err)
	}
	res, err := DefaultPlundervoltAES(82).Run(env, pol.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded || res.KeyRecovered {
		t.Fatalf("AES Plundervolt beat the guard: %s (%s)", res, res.Notes)
	}
	if res.Crashes != 0 {
		t.Fatalf("guarded machine crashed: %s", res)
	}
}
