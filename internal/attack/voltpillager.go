package attack

import (
	"errors"
	"fmt"

	"plugvolt/internal/cpu"
	"plugvolt/internal/defense"
	"plugvolt/internal/sim"
	"plugvolt/internal/victim"
)

// VoltPillager is the hardware fault attack of Chen et al. (USENIX Sec
// '21), cited by the paper as [6]: a physical adversary solders onto the
// SVID bus and injects voltage commands directly into the regulator,
// bypassing MSR 0x150 entirely.
//
// It is included as the honest boundary of the paper's threat model: every
// *software* countermeasure — the polling module included — watches the
// MSR interface, and VoltPillager never touches it. The voltage
// cross-check extension in core.GuardConfig (beyond the paper) can at
// least *detect* the rail deficit through IA32_PERF_STATUS, but software
// cannot out-command a soldered-on injector; prevention requires the
// hardware clamp to live in the regulator itself.
type VoltPillager struct {
	VictimCore int
	// DepthMV is the injected undervolt below the nominal rail (positive
	// number of millivolts); 0 = calibrate by deepening until faults.
	DepthMV int
	// Pulses is the number of injection pulses; OpsPerPulse the victim
	// work probed under each pulse.
	Pulses      int
	OpsPerPulse int
	// PulseHold is how long each injected level is held.
	PulseHold sim.Duration
}

// DefaultVoltPillager mirrors the published attack cadence.
func DefaultVoltPillager() *VoltPillager {
	return &VoltPillager{
		VictimCore:  1,
		Pulses:      40,
		OpsPerPulse: 500_000,
		PulseHold:   1 * sim.Millisecond,
	}
}

// Name implements Attack.
func (*VoltPillager) Name() string { return "voltpillager" }

// inject issues a raw SVID command to the victim core's regulator — the
// soldered-on microcontroller path. No MSR is written.
func (a *VoltPillager) inject(p *cpu.Platform, targetMV float64) {
	p.Core(a.VictimCore).VR.SetTarget(targetMV)
}

// Run implements Attack.
func (a *VoltPillager) Run(env *defense.Env, defName string) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	p := env.Platform
	r := &Result{Attack: a.Name(), Defense: defName, Model: p.Spec.Codename}
	start := p.Sim.Now()
	defer func() { r.Duration = p.Sim.Now() - start }()

	nominal := p.Spec.NominalMV(p.Core(a.VictimCore).Ratio())
	depths := []int{a.DepthMV}
	if a.DepthMV == 0 {
		depths = nil
		for d := 80; d <= 420; d += 20 {
			depths = append(depths, d)
		}
	}
	for _, depth := range depths {
		for pulse := 0; pulse < a.Pulses; pulse++ {
			r.Attempts++
			a.inject(p, nominal-float64(depth))
			p.Sim.RunFor(a.PulseHold)
			loop, err := victim.NewIMulLoop(p.Core(a.VictimCore), a.OpsPerPulse)
			if err != nil {
				return nil, err
			}
			res, err := loop.RunBatch()
			// Release the rail between pulses regardless of outcome.
			a.inject(p, nominal)
			p.Sim.RunFor(a.PulseHold)
			if err != nil {
				if errors.Is(err, cpu.ErrCrashed) {
					r.Crashes++
					p.Reboot()
					nominal = p.Spec.NominalMV(p.Core(a.VictimCore).Ratio())
					break // this depth crashes; no deeper probing
				}
				return nil, err
			}
			r.FaultsObserved += res.Faults
			if r.FaultsObserved > 0 {
				r.Succeeded = true
				r.Notes = fmt.Sprintf("SVID injection at %d mV below nominal corrupted %d results (no MSR writes issued)",
					depth, r.FaultsObserved)
				return r, nil
			}
		}
	}
	r.Notes = "injection sweep produced no faults"
	return r, nil
}
