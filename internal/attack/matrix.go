package attack

import (
	"encoding/json"
	"fmt"

	"plugvolt/internal/defense"
)

// EnvFactory builds a fresh environment (platform + kernel + registry) for
// one matrix cell. Each cell gets its own machine so campaigns never share
// crashes, module residue or characterization state.
type EnvFactory func() (*defense.Env, error)

// DefenseFactory builds a countermeasure for a given (fresh) environment;
// defenses that need characterization do it here against the cell's own
// machine.
type DefenseFactory struct {
	Name  string
	Build func(env *defense.Env) (defense.Countermeasure, error)
}

// AttackFactory builds a fresh attack campaign per cell (campaign structs
// carry per-run counters, so cells must not share them).
type AttackFactory struct {
	Name  string
	Build func() Attack
}

// Matrix runs every attack against every defense, each on a fresh machine,
// and returns the results in defense-major order.
func Matrix(newEnv EnvFactory, defenses []DefenseFactory, attacks []AttackFactory) ([]*Result, error) {
	if newEnv == nil {
		return nil, fmt.Errorf("attack: matrix needs an env factory")
	}
	if len(defenses) == 0 || len(attacks) == 0 {
		return nil, fmt.Errorf("attack: matrix needs at least one defense and one attack")
	}
	var out []*Result
	for _, df := range defenses {
		for _, af := range attacks {
			env, err := newEnv()
			if err != nil {
				return nil, fmt.Errorf("attack: cell (%s, %s): env: %w", df.Name, af.Name, err)
			}
			cm, err := df.Build(env)
			if err != nil {
				return nil, fmt.Errorf("attack: cell (%s, %s): defense: %w", df.Name, af.Name, err)
			}
			if err := cm.Install(env); err != nil {
				return nil, fmt.Errorf("attack: cell (%s, %s): install: %w", df.Name, af.Name, err)
			}
			res, err := af.Build().Run(env, cm.Name())
			if err != nil {
				return nil, fmt.Errorf("attack: cell (%s, %s): run: %w", df.Name, af.Name, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// ResultsJSON serializes results for archival (EXPERIMENTS.md appendices,
// external analysis).
func ResultsJSON(results []*Result) ([]byte, error) {
	return json.MarshalIndent(results, "", " ")
}

// Summary aggregates a result set: how many cells succeeded per defense.
func Summary(results []*Result) map[string]struct{ Total, Succeeded int } {
	out := map[string]struct{ Total, Succeeded int }{}
	for _, r := range results {
		s := out[r.Defense]
		s.Total++
		if r.Succeeded {
			s.Succeeded++
		}
		out[r.Defense] = s
	}
	return out
}
