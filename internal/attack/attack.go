// Package attack implements the three published DVFS fault attacks the
// paper's countermeasure is evaluated against:
//
//   - Plundervolt (Murdock et al., S&P '20): undervolt through MSR 0x150
//     while an SGX enclave signs with RSA-CRT; one faulty signature factors
//     the modulus via Boneh-DeMillo-Lipton;
//   - VoltJockey (Qiu et al., CCS '19): hold a modest undervolt that is
//     safe at the current frequency, then jack the frequency up so the
//     same offset becomes unsafe — the frequency-side of the paper's
//     "causal independence" root cause;
//   - V0LTpwn (Kenjar et al., USENIX Sec '20): push the core into a state
//     where a victim's FMA/AVX-heavy computation silently corrupts,
//     attacking x86 integrity rather than extracting a key.
//
// Every attack runs against a defense.Env so the evaluation matrix (E1/E2)
// is uniform: the same attack code faces each countermeasure.
package attack

import (
	"errors"
	"fmt"

	"plugvolt/internal/cpu"
	"plugvolt/internal/defense"
	"plugvolt/internal/flight"
	"plugvolt/internal/msr"
	"plugvolt/internal/pstate"
	"plugvolt/internal/sim"
	"plugvolt/internal/telemetry"
	"plugvolt/internal/telemetry/span"
	"plugvolt/internal/victim"
)

// campaignTel instruments one attack campaign against the env's optional
// telemetry set. Every method is safe when the env carries no telemetry:
// the counters come back nil and degrade to no-ops.
type campaignTel struct {
	set     *telemetry.Set
	writes  *telemetry.Counter
	blocked *telemetry.Counter
	faults  *telemetry.Counter
	crashes *telemetry.Counter
	spans   *span.Tracer
	// campaign is the open span covering the whole Run; attack steps parent
	// under it in the causal trace.
	campaign *span.Active
	// flight is the env's flight recorder (nil disables capture): every
	// observed fault and crash both records into the ring and fires an
	// incident trigger, freezing the pre-fault state into a bundle.
	flight     *flight.Recorder
	victimCore int
}

func newCampaignTel(env *defense.Env, attackName, defName string, victimCore int) *campaignTel {
	reg := env.Telemetry.Registry()
	lbl := telemetry.Labels{"attack": attackName, "defense": defName}
	t := &campaignTel{
		set:        env.Telemetry,
		writes:     reg.Counter("attack_mailbox_writes_total", "OC mailbox writes issued by the campaign", lbl),
		blocked:    reg.Counter("attack_blocked_writes_total", "mailbox writes rejected by the active defense", lbl),
		faults:     reg.Counter("attack_faults_total", "corrupted victim results observed by the campaign", lbl),
		crashes:    reg.Counter("attack_crashes_total", "machine crashes caused by the campaign", lbl),
		spans:      env.Telemetry.Spans(),
		flight:     env.Flight,
		victimCore: victimCore,
	}
	if t.spans != nil {
		t.campaign = t.spans.Start("attack", "campaign_"+attackName,
			map[string]any{"attack": attackName, "defense": defName})
	}
	return t
}

// done closes the campaign span (virtual-clock duration: campaigns consume
// real simulated time). Call via defer from every Run.
func (t *campaignTel) done(r *Result) {
	t.campaign.SetAttr("succeeded", r.Succeeded)
	t.campaign.End()
}

// fault records n observed faults, journals the observation site, and fires
// a flight trigger so the pre-fault MSR/P-state/guard history is frozen into
// an incident bundle.
func (t *campaignTel) fault(r *Result, n, offsetMV int) {
	if n <= 0 {
		return
	}
	t.faults.Add(float64(n))
	t.set.Events().Emit("attack_fault", map[string]any{
		"attack": r.Attack, "defense": r.Defense, "faults": n,
		"offset_mv": offsetMV, "attempts": r.Attempts,
	})
	if t.flight != nil {
		t.flight.Fault(t.victimCore, n, offsetMV)
		t.flight.Trigger(flight.CauseFault, t.victimCore,
			fmt.Sprintf("attack=%s defense=%s offset_mv=%d faults=%d", r.Attack, r.Defense, offsetMV, n))
	}
}

// crash records a campaign-induced machine crash and fires a flight trigger.
func (t *campaignTel) crash(r *Result, offsetMV int) {
	t.crashes.Inc()
	t.set.Events().Emit("attack_crash", map[string]any{
		"attack": r.Attack, "defense": r.Defense,
		"offset_mv": offsetMV, "attempts": r.Attempts,
	})
	if t.flight != nil {
		t.flight.Crash(t.victimCore, offsetMV)
		t.flight.Trigger(flight.CauseCrash, t.victimCore,
			fmt.Sprintf("attack=%s defense=%s offset_mv=%d", r.Attack, r.Defense, offsetMV))
	}
}

// Result records one attack campaign.
type Result struct {
	Attack  string
	Defense string
	Model   string

	// Attempts is attack-specific work units (signatures, batches).
	Attempts int
	// MailboxWrites / BlockedWrites count 0x150 writes issued / rejected.
	MailboxWrites, BlockedWrites int
	// FaultsObserved counts corrupted victim results.
	FaultsObserved int
	// Crashes counts machine crashes caused by the campaign.
	Crashes int
	// KeyRecovered reports a successful Plundervolt factorization.
	KeyRecovered bool
	// ProbesToFirstFault is the 1-based probe ordinal at which a
	// search-based campaign (redteam) first faulted the victim; 0 when no
	// probe faulted or the campaign is not search-based.
	ProbesToFirstFault int
	// Succeeded is the attack-specific success criterion.
	Succeeded bool
	// Duration is the virtual time the campaign consumed.
	Duration sim.Duration
	// Notes carries a human-readable outcome summary.
	Notes string
}

// String renders a one-line summary.
func (r *Result) String() string {
	status := "DEFEATED"
	if r.Succeeded {
		status = "SUCCEEDED"
	}
	return fmt.Sprintf("%-12s vs %-28s: %s (attempts=%d writes=%d blocked=%d faults=%d crashes=%d)",
		r.Attack, r.Defense, status, r.Attempts, r.MailboxWrites, r.BlockedWrites,
		r.FaultsObserved, r.Crashes)
}

// Attack is a runnable DVFS fault-attack campaign.
type Attack interface {
	Name() string
	Run(env *defense.Env, defName string) (*Result, error)
}

// pinFrequency uses the cpufreq stack to pin a core, as a privileged
// attacker would with cpupower.
func pinFrequency(env *defense.Env, coreIdx, khz int) error {
	mgr, err := pstate.NewManager(env.Platform.Sim, env.Platform, nil)
	if err != nil {
		return err
	}
	cp := &pstate.CPUPower{M: mgr}
	if err := cp.FrequencySet(coreIdx, khz); err != nil {
		return err
	}
	env.Platform.SettleAll()
	return nil
}

// writeOffset issues the Algorithm 1 mailbox write, tracking block/accept.
// With tracing attached the write runs inside an "attack_write" span, so the
// register-level mailbox_write outcome is causally attributed to the attack
// step (and transitively to the campaign) rather than to the guard.
func writeOffset(env *defense.Env, r *Result, t *campaignTel, coreIdx, offsetMV int) bool {
	r.MailboxWrites++
	t.writes.Inc()
	var sp *span.Active
	if t.spans != nil {
		sp = t.spans.Start("attack", "attack_write", map[string]any{
			"core": coreIdx, "offset_mv": offsetMV,
		})
	}
	err := env.Platform.WriteOffsetViaMSR(coreIdx, offsetMV, msr.PlaneCore)
	sp.SetAttr("blocked", err != nil)
	sp.End()
	if err != nil {
		r.BlockedWrites++
		t.blocked.Inc()
		return false
	}
	return true
}

// Plundervolt is the RSA-CRT key-extraction campaign.
type Plundervolt struct {
	// VictimCore hosts the enclave and signer.
	VictimCore int
	// PinKHz pins the victim frequency (0 = leave at boot frequency).
	PinKHz int
	// StartMV/StepMV/FloorMV drive the undervolt search (negative space).
	StartMV, StepMV, FloorMV int
	// SignsPerStep is the number of signatures collected per offset.
	SignsPerStep int
	// LingerSigns extends the signature budget at the first offset where a
	// faulty signature appears: the sweet spot for Boneh-DeMillo-Lipton is
	// the narrow band where ~one multiplication per signature faults, and
	// the published attack lingers there rather than undervolting further
	// (deeper offsets corrupt both CRT halves and defeat the gcd).
	LingerSigns int
	// KeyBits sizes the deterministic RSA key.
	KeyBits int
	// Seed drives key generation and fault placement.
	Seed int64
	// DwellPerSign is the virtual time between signatures (the victim
	// service's request cadence), during which defenses get to act.
	DwellPerSign sim.Duration
}

// DefaultPlundervolt mirrors the published attack parameters scaled to the
// simulation (search from -50 mV in 5 mV steps, 20 signatures per step).
func DefaultPlundervolt(seed int64) *Plundervolt {
	return &Plundervolt{
		VictimCore:   1,
		StartMV:      -50,
		StepMV:       -2,
		FloorMV:      -350,
		SignsPerStep: 20,
		LingerSigns:  500,
		KeyBits:      512,
		Seed:         seed,
		DwellPerSign: 200 * sim.Microsecond,
	}
}

// Name implements Attack.
func (*Plundervolt) Name() string { return "plundervolt" }

// Run implements Attack.
func (a *Plundervolt) Run(env *defense.Env, defName string) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	p := env.Platform
	r := &Result{Attack: a.Name(), Defense: defName, Model: p.Spec.Codename}
	tel := newCampaignTel(env, r.Attack, defName, a.VictimCore)
	defer tel.done(r)
	start := p.Sim.Now()
	defer func() { r.Duration = p.Sim.Now() - start }()

	key, err := victim.GenerateRSAKey(a.KeyBits, a.Seed)
	if err != nil {
		return nil, err
	}
	enclave, err := env.Registry.Create("rsa-signer", a.VictimCore)
	if err != nil {
		return nil, err
	}
	defer enclave.Destroy()

	if a.PinKHz != 0 {
		if err := pinFrequency(env, a.VictimCore, a.PinKHz); err != nil {
			return nil, err
		}
	}
	signer, err := victim.NewCRTSigner(key, p.Core(a.VictimCore), a.Seed+1)
	if err != nil {
		return nil, err
	}
	digest := key.HashToInt([]byte("plundervolt target message"))

	for off := a.StartMV; off >= a.FloorMV; off += a.StepMV {
		if !writeOffset(env, r, tel, a.VictimCore, off) {
			continue // blocked (access control); deeper writes block too
		}
		// Let the regulator move (and defenses react).
		p.Sim.RunFor(600 * sim.Microsecond)
		budget := a.SignsPerStep
		for i := 0; i < budget; i++ {
			r.Attempts++
			sig, faulted, err := signer.Sign(digest)
			p.Sim.RunFor(a.DwellPerSign)
			if err != nil {
				if errors.Is(err, cpu.ErrCrashed) {
					r.Crashes++
					tel.crash(r, off)
					p.Reboot()
					r.Notes = "crashed before exploitable fault"
					return r, nil
				}
				return nil, err
			}
			if !faulted {
				continue
			}
			r.FaultsObserved++
			tel.fault(r, 1, off)
			// Faults started: this is the exploitable band. Linger here.
			if budget < a.LingerSigns {
				budget = a.LingerSigns
			}
			if f, ok := victim.RecoverFactor(key.N, key.E, digest, sig); ok && victim.FactorsN(key.N, f) {
				r.KeyRecovered = true
				r.Succeeded = true
				r.Notes = fmt.Sprintf("factored N at offset %d mV after %d signatures", off, r.Attempts)
				return r, nil
			}
		}
	}
	r.Notes = "undervolt search exhausted without key recovery"
	return r, nil
}

// VoltJockey is the frequency-manipulation campaign: program an offset that
// is safe at the preparation frequency, then raise the frequency so the
// pair becomes unsafe.
type VoltJockey struct {
	VictimCore int
	// PrepKHz is the low preparation frequency; TargetKHz the strike
	// frequency (0 = model min/max).
	PrepKHz, TargetKHz int
	// OffsetMV is the held undervolt (0 = derive: 30 mV below the strike
	// frequency's expected safe margin by probing).
	OffsetMV int
	// BatchesAtTarget is how many victim imul batches run at the strike
	// frequency.
	BatchesAtTarget int
	// BatchSize is the imul loop length per batch.
	BatchSize int
	// Dwell is the virtual time between batches.
	Dwell sim.Duration
}

// DefaultVoltJockey configures the strike at the model's turbo frequency.
func DefaultVoltJockey() *VoltJockey {
	return &VoltJockey{
		VictimCore:      1,
		BatchesAtTarget: 50,
		BatchSize:       200_000,
		Dwell:           150 * sim.Microsecond,
	}
}

// Name implements Attack.
func (*VoltJockey) Name() string { return "voltjockey" }

// Run implements Attack.
func (a *VoltJockey) Run(env *defense.Env, defName string) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	p := env.Platform
	r := &Result{Attack: a.Name(), Defense: defName, Model: p.Spec.Codename}
	tel := newCampaignTel(env, r.Attack, defName, a.VictimCore)
	defer tel.done(r)
	start := p.Sim.Now()
	defer func() { r.Duration = p.Sim.Now() - start }()

	prep := a.PrepKHz
	if prep == 0 {
		prep = p.FreqTableKHz()[0]
	}
	target := a.TargetKHz
	if target == 0 {
		tbl := p.FreqTableKHz()
		target = tbl[len(tbl)-1]
	}

	// Phase 1: at the low prep frequency, program the held undervolt.
	if err := pinFrequency(env, a.VictimCore, prep); err != nil {
		return nil, err
	}
	offset := a.OffsetMV
	if offset == 0 {
		// Attacker calibration: deep enough to fault at `target`, shallow
		// enough to hold at `prep`. Search on the attacker's own replica
		// is emulated by probing live with small strikes.
		offset = a.calibrate(env, r, tel, prep, target)
		if offset == 0 {
			r.Notes = "calibration found no workable offset"
			return r, nil
		}
	}
	if !writeOffset(env, r, tel, a.VictimCore, offset) {
		r.Notes = "mailbox write blocked during preparation"
		return r, nil
	}
	p.Sim.RunFor(1 * sim.Millisecond) // regulator settles; defenses may act

	// Phase 2: strike — jump to the target frequency and run the victim.
	if err := pinFrequency(env, a.VictimCore, target); err != nil {
		return nil, err
	}
	for i := 0; i < a.BatchesAtTarget; i++ {
		r.Attempts++
		loop, err := victim.NewIMulLoop(p.Core(a.VictimCore), a.BatchSize)
		if err != nil {
			return nil, err
		}
		res, err := loop.RunBatch()
		if err != nil {
			if errors.Is(err, cpu.ErrCrashed) {
				r.Crashes++
				tel.crash(r, offset)
				p.Reboot()
				r.Notes = "crashed at strike frequency"
				return r, nil
			}
			return nil, err
		}
		r.FaultsObserved += res.Faults
		tel.fault(r, res.Faults, offset)
		p.Sim.RunFor(a.Dwell)
		// Re-arm: defenses may have reset the offset mid-strike.
		if p.Core(a.VictimCore).OffsetMV() != offset {
			if !writeOffset(env, r, tel, a.VictimCore, offset) {
				break
			}
		}
	}
	r.Succeeded = r.FaultsObserved > 0
	if r.Succeeded {
		r.Notes = fmt.Sprintf("frequency strike induced %d faults at offset %d mV", r.FaultsObserved, offset)
	} else {
		r.Notes = "strike produced no faults"
	}
	return r, nil
}

// calibrate finds a held offset: safe (no faults, no crash) at prep, yet
// faulting at target. Returns 0 if none found.
func (a *VoltJockey) calibrate(env *defense.Env, r *Result, tel *campaignTel, prepKHz, targetKHz int) int {
	p := env.Platform
	for off := -40; off >= -340; off -= 10 {
		// Probe at the target frequency with a short strike.
		if err := pinFrequency(env, a.VictimCore, targetKHz); err != nil {
			return 0
		}
		if !writeOffset(env, r, tel, a.VictimCore, off) {
			return 0
		}
		p.Sim.RunFor(800 * sim.Microsecond)
		loop, err := victim.NewIMulLoop(p.Core(a.VictimCore), 100_000)
		if err != nil {
			return 0
		}
		res, err := loop.RunBatch()
		crashed := errors.Is(err, cpu.ErrCrashed)
		if crashed {
			r.Crashes++
			tel.crash(r, off)
			p.Reboot()
		}
		// Restore safe state between probes.
		writeOffset(env, r, tel, a.VictimCore, 0)
		if err := pinFrequency(env, a.VictimCore, prepKHz); err != nil {
			return 0
		}
		p.Sim.RunFor(800 * sim.Microsecond)
		if crashed {
			continue // too deep even to strike; shallower already failed
		}
		if res.Faults == 0 {
			continue // not deep enough
		}
		// Verify it holds quietly at prep frequency.
		if !writeOffset(env, r, tel, a.VictimCore, off) {
			return 0
		}
		p.Sim.RunFor(800 * sim.Microsecond)
		loop2, err := victim.NewIMulLoop(p.Core(a.VictimCore), 100_000)
		if err != nil {
			return 0
		}
		res2, err := loop2.RunBatch()
		if err == nil && res2.Faults == 0 {
			return off // found: quiet at prep, faults at target
		}
		if errors.Is(err, cpu.ErrCrashed) {
			r.Crashes++
			tel.crash(r, off)
			p.Reboot()
		}
		writeOffset(env, r, tel, a.VictimCore, 0)
		p.Sim.RunFor(800 * sim.Microsecond)
	}
	return 0
}

// V0LTpwn is the integrity-corruption campaign against an FMA-heavy victim
// computation.
type V0LTpwn struct {
	VictimCore int
	// PinKHz pins the victim core (0 = base frequency).
	PinKHz int
	// StartMV/StepMV/FloorMV drive the undervolt search.
	StartMV, StepMV, FloorMV int
	// OpsPerStep is the number of FMA operations per probe.
	OpsPerStep int
	// TargetFaults is the success threshold (corrupted results needed to
	// flip the victim's decision, per the published attack's bit-flip
	// requirement).
	TargetFaults int
	Dwell        sim.Duration
}

// DefaultV0LTpwn mirrors the published search strategy.
func DefaultV0LTpwn() *V0LTpwn {
	return &V0LTpwn{
		VictimCore:   1,
		StartMV:      -50,
		StepMV:       -5,
		FloorMV:      -350,
		OpsPerStep:   500_000,
		TargetFaults: 1,
		Dwell:        200 * sim.Microsecond,
	}
}

// Name implements Attack.
func (*V0LTpwn) Name() string { return "v0ltpwn" }

// Run implements Attack.
func (a *V0LTpwn) Run(env *defense.Env, defName string) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	p := env.Platform
	r := &Result{Attack: a.Name(), Defense: defName, Model: p.Spec.Codename}
	tel := newCampaignTel(env, r.Attack, defName, a.VictimCore)
	defer tel.done(r)
	start := p.Sim.Now()
	defer func() { r.Duration = p.Sim.Now() - start }()

	pin := a.PinKHz
	if pin == 0 {
		pin = int(p.Spec.BaseRatio) * p.Spec.BusMHz * 1000
	}
	if err := pinFrequency(env, a.VictimCore, pin); err != nil {
		return nil, err
	}
	c := p.Core(a.VictimCore)
	for off := a.StartMV; off >= a.FloorMV; off += a.StepMV {
		if !writeOffset(env, r, tel, a.VictimCore, off) {
			continue
		}
		p.Sim.RunFor(600 * sim.Microsecond)
		r.Attempts++
		res, err := c.RunBatch(cpu.ClassFMA, a.OpsPerStep)
		if err != nil {
			if errors.Is(err, cpu.ErrCrashed) {
				r.Crashes++
				tel.crash(r, off)
				p.Reboot()
				r.Notes = "crashed before reaching target fault count"
				return r, nil
			}
			return nil, err
		}
		r.FaultsObserved += res.Faults
		tel.fault(r, res.Faults, off)
		p.Sim.RunFor(a.Dwell)
		if r.FaultsObserved >= a.TargetFaults {
			r.Succeeded = true
			r.Notes = fmt.Sprintf("corrupted %d FMA results at offset %d mV", r.FaultsObserved, off)
			return r, nil
		}
	}
	r.Notes = "search exhausted without corrupting the victim"
	return r, nil
}
