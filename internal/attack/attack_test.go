package attack

import (
	"strings"
	"testing"

	"plugvolt/internal/core"
	"plugvolt/internal/cpu"
	"plugvolt/internal/defense"
	"plugvolt/internal/kernel"
	"plugvolt/internal/models"
	"plugvolt/internal/sgx"
)

func newEnv(t *testing.T, model string, seed int64) *defense.Env {
	t.Helper()
	spec, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cpu.NewPlatform(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return &defense.Env{
		Platform: p,
		Kernel:   kernel.New(p.Sim, p),
		Registry: sgx.NewRegistry(p.Sim),
	}
}

func characterizeEnv(t *testing.T, env *defense.Env) *core.Grid {
	t.Helper()
	cfg := core.DefaultCharacterizerConfig()
	cfg.Iterations = 200_000
	cfg.OffsetStartMV = -5
	cfg.OffsetStepMV = -5
	cfg.OffsetEndMV = -350
	ch, err := core.NewCharacterizer(env.Platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ch.Run()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlundervoltSucceedsUndefended(t *testing.T) {
	env := newEnv(t, "skylake", 31)
	a := DefaultPlundervolt(31)
	res, err := a.Run(env, "none")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded || !res.KeyRecovered {
		t.Fatalf("Plundervolt failed on an undefended machine: %s", res)
	}
	if res.FaultsObserved == 0 || res.MailboxWrites == 0 {
		t.Fatalf("implausible result: %s", res)
	}
	if res.BlockedWrites != 0 {
		t.Fatalf("writes blocked with no defense: %s", res)
	}
	if !strings.Contains(res.Notes, "factored N") {
		t.Fatalf("notes: %q", res.Notes)
	}
}

func TestPlundervoltDefeatedByPollingGuard(t *testing.T) {
	env := newEnv(t, "skylake", 32)
	grid := characterizeEnv(t, env)
	pol, err := defense.NewPolling(grid.UnsafeSet(), env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env); err != nil {
		t.Fatal(err)
	}
	a := DefaultPlundervolt(32)
	res, err := a.Run(env, pol.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatalf("Plundervolt beat the polling guard: %s", res)
	}
	if res.FaultsObserved != 0 {
		t.Fatalf("guard leaked %d faults", res.FaultsObserved)
	}
	if res.Crashes != 0 {
		t.Fatalf("guarded machine crashed: %s", res)
	}
	if pol.Guard.Interventions == 0 {
		t.Fatal("guard never intervened during the campaign")
	}
	// Crucially, no writes were *blocked* — the interface stayed open.
	if res.BlockedWrites != 0 {
		t.Fatalf("polling guard blocked writes: %s", res)
	}
}

func TestPlundervoltDefeatedByAccessControl(t *testing.T) {
	env := newEnv(t, "skylake", 33)
	ac := &defense.AccessControl{}
	if err := ac.Install(env); err != nil {
		t.Fatal(err)
	}
	a := DefaultPlundervolt(33)
	res, err := a.Run(env, ac.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatalf("Plundervolt beat access control: %s", res)
	}
	// Every mailbox write must have been rejected (enclave exists).
	if res.BlockedWrites != res.MailboxWrites || res.BlockedWrites == 0 {
		t.Fatalf("blocked %d of %d writes", res.BlockedWrites, res.MailboxWrites)
	}
}

func TestPlundervoltDefeatedByMicrocodeAndClamp(t *testing.T) {
	for _, which := range []string{"microcode", "clamp"} {
		which := which
		t.Run(which, func(t *testing.T) {
			env := newEnv(t, "skylake", 34)
			grid := characterizeEnv(t, env)
			msv := grid.MaximalSafeOffsetMV(5)
			var cm defense.Countermeasure
			if which == "microcode" {
				cm = &defense.Microcode{MaxSafeOffsetMV: msv}
			} else {
				cm = &defense.ClampMSR{LimitMV: msv}
			}
			if err := cm.Install(env); err != nil {
				t.Fatal(err)
			}
			a := DefaultPlundervolt(34)
			res, err := a.Run(env, cm.Name())
			if err != nil {
				t.Fatal(err)
			}
			if res.Succeeded || res.FaultsObserved != 0 || res.Crashes != 0 {
				t.Fatalf("%s defeated: %s", which, res)
			}
			// Neither variant rejects writes: they ignore or clamp.
			if res.BlockedWrites != 0 {
				t.Fatalf("%s blocked writes: %s", which, res)
			}
		})
	}
}

func TestV0LTpwnSucceedsUndefendedAndLosesToGuard(t *testing.T) {
	env := newEnv(t, "skylake", 35)
	a := DefaultV0LTpwn()
	res, err := a.Run(env, "none")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("V0LTpwn failed undefended: %s", res)
	}

	env2 := newEnv(t, "skylake", 35)
	grid := characterizeEnv(t, env2)
	pol, err := defense.NewPolling(grid.UnsafeSet(), env2.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env2); err != nil {
		t.Fatal(err)
	}
	res2, err := a.Run(env2, pol.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Succeeded || res2.FaultsObserved != 0 {
		t.Fatalf("V0LTpwn beat the guard: %s", res2)
	}
}

func TestVoltJockeySucceedsUndefended(t *testing.T) {
	env := newEnv(t, "skylake", 36)
	a := DefaultVoltJockey()
	res, err := a.Run(env, "none")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("VoltJockey failed undefended: %s (%s)", res, res.Notes)
	}
	if res.FaultsObserved == 0 {
		t.Fatalf("no faults: %s", res)
	}
}

func TestVoltJockeyDefeatedByGuard(t *testing.T) {
	// The frequency-side attack is the sharpest test of the paper's
	// state-pair (not value-pair) formulation: the held offset is safe at
	// prep frequency, and only the frequency change makes the *pair*
	// unsafe. The guard polls the pair and must catch it.
	env := newEnv(t, "skylake", 37)
	grid := characterizeEnv(t, env)
	pol, err := defense.NewPolling(grid.UnsafeSet(), env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env); err != nil {
		t.Fatal(err)
	}
	a := DefaultVoltJockey()
	res, err := a.Run(env, pol.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded || res.FaultsObserved != 0 {
		t.Fatalf("VoltJockey beat the guard: %s", res)
	}
	if res.Crashes != 0 {
		t.Fatalf("guarded machine crashed: %s", res)
	}
}

func TestAttackMatrixAllThreeCPUs(t *testing.T) {
	// E1: the guard must defeat all three attacks on all three CPU models
	// while the undefended machine falls to all of them.
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	for _, model := range []string{"skylake", "kabylaker", "cometlake"} {
		model := model
		t.Run(model, func(t *testing.T) {
			attacks := func() []Attack {
				return []Attack{DefaultPlundervolt(40), DefaultVoltJockey(), DefaultV0LTpwn()}
			}
			// Undefended: every attack succeeds.
			for _, a := range attacks() {
				env := newEnv(t, model, 41)
				res, err := a.Run(env, "none")
				if err != nil {
					t.Fatal(err)
				}
				if !res.Succeeded {
					t.Errorf("%s undefended on %s: %s (%s)", a.Name(), model, res, res.Notes)
				}
			}
			// Guarded: every attack fails with zero faults.
			env := newEnv(t, model, 42)
			grid := characterizeEnv(t, env)
			pol, err := defense.NewPolling(grid.UnsafeSet(), env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := pol.Install(env); err != nil {
				t.Fatal(err)
			}
			for _, a := range attacks() {
				res, err := a.Run(env, pol.Name())
				if err != nil {
					t.Fatal(err)
				}
				if res.Succeeded || res.FaultsObserved != 0 {
					t.Errorf("%s beat the guard on %s: %s", a.Name(), model, res)
				}
			}
		})
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Attack: "plundervolt", Defense: "none", Succeeded: true}
	if !strings.Contains(r.String(), "SUCCEEDED") {
		t.Fatal("success not rendered")
	}
	r.Succeeded = false
	if !strings.Contains(r.String(), "DEFEATED") {
		t.Fatal("defeat not rendered")
	}
}

// newEnvNoT is the test-helper-free env builder used by factory closures.
func newEnvNoT(model string, seed int64) (*defense.Env, error) {
	spec, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	p, err := cpu.NewPlatform(spec, seed)
	if err != nil {
		return nil, err
	}
	return &defense.Env{
		Platform: p,
		Kernel:   kernel.New(p.Sim, p),
		Registry: sgx.NewRegistry(p.Sim),
	}, nil
}
