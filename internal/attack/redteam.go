package attack

import (
	"errors"
	"fmt"
	"math"

	"plugvolt/internal/cpu"
	"plugvolt/internal/defense"
	"plugvolt/internal/search"
	"plugvolt/internal/sim"
	"plugvolt/internal/victim"
)

// RedTeam is the adaptive glitch-search campaign: instead of replaying a
// published attack's fixed undervolt schedule, it runs seeded simulated
// annealing over (frequency, offset, dwell, phase) against the live,
// defended machine, hunting the *minimal* faulting glitch. It is the
// harshest workload the guard faces — every probe is a fresh operating
// point chosen by an optimizer that adapts to whatever the defense let
// through — and it reports probes-to-first-fault, the attacker-side metric
// of how much protection the defense actually buys.
type RedTeam struct {
	// VictimCore runs the imul victim loop.
	VictimCore int
	// Seed drives the annealer's splitmix64 stream: a fixed seed replays
	// the exact probe sequence bit for bit.
	Seed int64
	// Steps is the annealing probe budget.
	Steps int
	// BatchSize is the victim imul loop length per probe.
	BatchSize int
	// OffsetStartMV/OffsetStepMV/OffsetCells define the offset axis
	// (OffsetStartMV + i*OffsetStepMV for i in [0, OffsetCells)).
	OffsetStartMV, OffsetStepMV, OffsetCells int
	// Dwells and Phases are the candidate values for the post-batch dwell
	// and the write-to-batch phase delay axes.
	Dwells, Phases []sim.Duration
}

// Annealer cost shaping: faulting probes cost |offset| (minimal glitch =
// shallowest faulting one); quiet probes cost a base plus their distance
// from the axis floor, pulling the walk deeper; crashes and blocked writes
// cost more than any quiet probe so the walk learns to avoid them.
const (
	redteamQuietBase   = 1000.0
	redteamCrashCost   = 3000.0
	redteamBlockedCost = 5000.0
)

// DefaultRedTeam returns the fleet's red-team attacker configuration.
func DefaultRedTeam(seed int64) *RedTeam {
	return &RedTeam{
		VictimCore:    1,
		Seed:          seed,
		Steps:         120,
		BatchSize:     200_000,
		OffsetStartMV: -20,
		OffsetStepMV:  -5,
		OffsetCells:   60,
		Dwells:        []sim.Duration{50 * sim.Microsecond, 150 * sim.Microsecond, 400 * sim.Microsecond},
		Phases:        []sim.Duration{0, 25 * sim.Microsecond, 100 * sim.Microsecond},
	}
}

// Name implements Attack.
func (*RedTeam) Name() string { return "redteam" }

// offsetMV maps an offset-axis index to millivolts.
func (a *RedTeam) offsetMV(i int) int { return a.OffsetStartMV + i*a.OffsetStepMV }

// Run implements Attack. The campaign is bit-for-bit deterministic for a
// fixed (seed, env): all randomness comes from the annealer's seeded
// stream and the platform's own seeded simulator.
func (a *RedTeam) Run(env *defense.Env, defName string) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if a.OffsetCells <= 0 || a.OffsetStepMV >= 0 || len(a.Dwells) == 0 || len(a.Phases) == 0 {
		return nil, fmt.Errorf("attack: bad redteam axes (cells=%d step=%d dwells=%d phases=%d)",
			a.OffsetCells, a.OffsetStepMV, len(a.Dwells), len(a.Phases))
	}
	p := env.Platform
	r := &Result{Attack: a.Name(), Defense: defName, Model: p.Spec.Codename}
	tel := newCampaignTel(env, r.Attack, defName, a.VictimCore)
	defer tel.done(r)
	start := p.Sim.Now()
	defer func() { r.Duration = p.Sim.Now() - start }()

	freqs := p.FreqTableKHz()
	axes := []search.Axis{
		{Name: "freq", Size: len(freqs)},
		{Name: "offset", Size: a.OffsetCells},
		{Name: "dwell", Size: len(a.Dwells)},
		{Name: "phase", Size: len(a.Phases)},
	}
	floorMV := math.Abs(float64(a.offsetMV(a.OffsetCells - 1)))

	cfg := search.DefaultAnnealConfig(a.Seed, a.Steps)
	cfg.OnProbe = func(probe int, state []int, cost float64, faulted, accepted bool) {
		if tel.spans == nil {
			return
		}
		// One search-trace span per probe, parented under the campaign
		// span, so the optimizer's walk is causally inspectable.
		sp := tel.spans.Start("attack", "search_probe", map[string]any{
			"probe": probe, "freq_khz": freqs[state[0]],
			"offset_mv": a.offsetMV(state[1]),
			"dwell_us":  int64(a.Dwells[state[2]] / sim.Microsecond),
			"phase_us":  int64(a.Phases[state[3]] / sim.Microsecond),
			"faulted":   faulted, "accepted": accepted,
		})
		sp.SetAttr("cost", cost)
		sp.End()
	}

	eval := func(_ int, state []int) (float64, bool, error) {
		freqKHz := freqs[state[0]]
		off := a.offsetMV(state[1])
		dwell := a.Dwells[state[2]]
		phase := a.Phases[state[3]]
		if err := pinFrequency(env, a.VictimCore, freqKHz); err != nil {
			return 0, false, err
		}
		if !writeOffset(env, r, tel, a.VictimCore, off) {
			// Rejected by access control; dwell and move on.
			p.Sim.RunFor(dwell)
			return redteamBlockedCost, false, nil
		}
		p.Sim.RunFor(phase)
		loop, err := victim.NewIMulLoop(p.Core(a.VictimCore), a.BatchSize)
		if err != nil {
			return 0, false, err
		}
		res, err := loop.RunBatch()
		if err != nil {
			if errors.Is(err, cpu.ErrCrashed) {
				r.Crashes++
				tel.crash(r, off)
				p.Reboot()
				p.Sim.RunFor(dwell)
				return redteamCrashCost, false, nil
			}
			return 0, false, err
		}
		p.Sim.RunFor(dwell)
		r.Attempts++
		if res.Faults > 0 {
			r.FaultsObserved += res.Faults
			// tel.fault fires the flight-recorder incident trigger: a fault
			// the guard failed to close is frozen into a bundle here.
			tel.fault(r, res.Faults, off)
			return math.Abs(float64(off)), true, nil
		}
		return redteamQuietBase + floorMV - math.Abs(float64(off)), false, nil
	}

	res, err := search.Anneal(axes, cfg, eval)
	if err != nil {
		return nil, err
	}
	r.ProbesToFirstFault = res.FirstFaultProbe
	r.Succeeded = res.FirstFaultProbe > 0
	if res.Best != nil {
		r.Notes = fmt.Sprintf(
			"minimal faulting glitch: %d mV at %d kHz (dwell %v, phase %v); first fault at probe %d of %d",
			a.offsetMV(res.Best[1]), freqs[res.Best[0]],
			a.Dwells[res.Best[2]], a.Phases[res.Best[3]],
			res.FirstFaultProbe, res.Probes)
	} else {
		r.Notes = fmt.Sprintf("annealing budget of %d probes exhausted without a fault", res.Probes)
	}
	return r, nil
}
