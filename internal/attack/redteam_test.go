package attack

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"plugvolt/internal/core"
	"plugvolt/internal/defense"
	"plugvolt/internal/flight"
	"plugvolt/internal/telemetry"
)

// instrumentedEnv builds an undefended env with live telemetry and a flight
// recorder attached, so red-team runs exercise the full capture path.
func instrumentedEnv(t *testing.T, model string, seed int64) (*defense.Env, *flight.Recorder) {
	t.Helper()
	env := newEnv(t, model, seed)
	env.Telemetry = telemetry.NewSet(env.Platform.Sim.Now, 4096, seed)
	rec := flight.NewRecorder(env.Platform.Sim.Now, 4096, 64, model, seed)
	env.Flight = rec
	return env, rec
}

// probeTrace renders the campaign's search_probe spans as one comparable
// string per probe, in trace order.
func probeTrace(t *testing.T, env *defense.Env) []string {
	t.Helper()
	var out []string
	for _, sp := range env.Telemetry.Spans().Spans() {
		if sp.Name != "search_probe" {
			continue
		}
		attrs, err := json.Marshal(sp.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("%d %s", sp.Start, attrs))
	}
	return out
}

func TestRedTeamSucceedsUndefended(t *testing.T) {
	env, rec := instrumentedEnv(t, "skylake", 91)
	res, err := DefaultRedTeam(91).Run(env, "none")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("red team failed on an undefended machine: %s", res)
	}
	if res.ProbesToFirstFault <= 0 {
		t.Fatalf("succeeded but ProbesToFirstFault=%d", res.ProbesToFirstFault)
	}
	if res.FaultsObserved == 0 || res.MailboxWrites == 0 {
		t.Fatalf("implausible result: %s", res)
	}
	if res.BlockedWrites != 0 {
		t.Fatalf("writes blocked with no defense: %s", res)
	}
	if !strings.Contains(res.Notes, "minimal faulting glitch") {
		t.Fatalf("notes: %q", res.Notes)
	}
	// Satellite: each fault the (absent) guard failed to close must freeze
	// an incident bundle in the flight recorder. Seal first to flush any
	// capture still waiting on its post-trigger window.
	rec.Seal()
	bundles := rec.Bundles()
	if len(bundles) == 0 {
		t.Fatal("no flight incident bundle captured despite observed faults")
	}
	for _, b := range bundles {
		if b.Cause != string(flight.CauseFault) && b.Cause != string(flight.CauseCrash) {
			t.Fatalf("unexpected incident cause %q", b.Cause)
		}
	}
	first := bundles[0]
	if first.Cause != string(flight.CauseFault) {
		// The annealer may crash the machine before its first fault; either
		// way the first fault must still have produced a bundle.
		found := false
		for _, b := range bundles {
			if b.Cause == string(flight.CauseFault) {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("faults observed but no fault-cause bundle captured")
		}
	}
	for _, b := range bundles {
		if b.Cause == string(flight.CauseFault) {
			if !strings.Contains(b.Detail, "attack=redteam") {
				t.Fatalf("bundle detail %q does not name the campaign", b.Detail)
			}
			if len(b.Records) == 0 {
				t.Fatal("incident bundle froze no flight records")
			}
			break
		}
	}
	t.Logf("first fault at probe %d; %d incident bundles", res.ProbesToFirstFault, len(bundles))
}

// TestRedTeamDeterministicForFixedSeed is the acceptance criterion: a fixed
// seed replays the identical probe sequence and identical result, bit for
// bit, on a fresh machine.
func TestRedTeamDeterministicForFixedSeed(t *testing.T) {
	run := func() (*Result, []string) {
		env, _ := instrumentedEnv(t, "skylake", 77)
		res, err := DefaultRedTeam(77).Run(env, "none")
		if err != nil {
			t.Fatal(err)
		}
		return res, probeTrace(t, env)
	}
	res1, trace1 := run()
	res2, trace2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("results diverge for a fixed seed:\n%s\nvs\n%s", res1, res2)
	}
	if len(trace1) == 0 {
		t.Fatal("no search_probe spans traced")
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Fatalf("probe sequences diverge for a fixed seed (%d vs %d probes)",
			len(trace1), len(trace2))
	}

	// A different seed must explore a different walk.
	env3, _ := instrumentedEnv(t, "skylake", 78)
	a := DefaultRedTeam(78)
	if _, err := a.Run(env3, "none"); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(trace1, probeTrace(t, env3)) {
		t.Fatal("different seeds replayed the identical probe sequence")
	}
}

// TestRedTeamFaultsAlwaysCaptured pits the adaptive attacker against the
// polling guard and asserts the incident-capture invariant: every campaign
// fault corresponds to at least one fault-cause flight bundle, and a
// fault-free campaign captures no fault bundles.
func TestRedTeamFaultsAlwaysCaptured(t *testing.T) {
	env, rec := instrumentedEnv(t, "skylake", 55)
	grid := characterizeEnv(t, env)
	pol, err := defense.NewPolling(grid.UnsafeSet(), env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Install(env); err != nil {
		t.Fatal(err)
	}
	res, err := DefaultRedTeam(55).Run(env, pol.Name())
	if err != nil {
		t.Fatal(err)
	}
	rec.Seal()
	faultBundles := 0
	for _, b := range rec.Bundles() {
		if b.Cause == string(flight.CauseFault) {
			faultBundles++
		}
	}
	if res.FaultsObserved > 0 && faultBundles == 0 {
		t.Fatalf("guard leaked %d faults but the flight recorder captured none", res.FaultsObserved)
	}
	if res.FaultsObserved == 0 && faultBundles != 0 {
		t.Fatalf("no faults observed yet %d fault bundles captured", faultBundles)
	}
	t.Logf("vs %s: %s (fault bundles: %d)", pol.Name(), res, faultBundles)
}
