package attack

import (
	"bytes"
	"errors"
	"fmt"

	"plugvolt/internal/cpu"
	"plugvolt/internal/defense"
	"plugvolt/internal/sim"
	"plugvolt/internal/victim"
)

// PlundervoltAES is the AES-NI variant of the Plundervolt campaign: the
// enclave encrypts with a secret AES-128 key; the adversary undervolts
// until round faults appear, harvests round-9 faulty ciphertexts, and runs
// the Piret-Quisquater differential fault analysis to recover the key.
type PlundervoltAES struct {
	VictimCore int
	// StartMV/StepMV/FloorMV drive the undervolt search.
	StartMV, StepMV, FloorMV int
	// BlocksPerStep is the number of encryptions probed per offset while
	// hunting for the working fault rate.
	BlocksPerStep int
	// PairsWanted is the round-9 pair harvest target; CollectBudget the
	// max encryptions spent harvesting at the chosen offset.
	PairsWanted, CollectBudget int
	// Seed keys the victim deterministically.
	Seed int64
	// DwellPerBatch paces the campaign in virtual time.
	DwellPerBatch sim.Duration
}

// DefaultPlundervoltAES mirrors the published attack shape.
func DefaultPlundervoltAES(seed int64) *PlundervoltAES {
	return &PlundervoltAES{
		VictimCore:    1,
		StartMV:       -50,
		StepMV:        -2,
		FloorMV:       -350,
		BlocksPerStep: 30_000,
		PairsWanted:   48,
		CollectBudget: 1_500_000,
		Seed:          seed,
		DwellPerBatch: 150 * sim.Microsecond,
	}
}

// Name implements Attack.
func (*PlundervoltAES) Name() string { return "plundervolt-aes" }

// Run implements Attack.
func (a *PlundervoltAES) Run(env *defense.Env, defName string) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	p := env.Platform
	r := &Result{Attack: a.Name(), Defense: defName, Model: p.Spec.Codename}
	tel := newCampaignTel(env, r.Attack, defName, a.VictimCore)
	start := p.Sim.Now()
	defer func() { r.Duration = p.Sim.Now() - start }()

	// Victim enclave holds a secret AES key.
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte((a.Seed >> (uint(i) % 8 * 8)) ^ int64(i*0x3b+1))
	}
	enclave, err := env.Registry.Create("aes-service", a.VictimCore)
	if err != nil {
		return nil, err
	}
	defer enclave.Destroy()
	aes, err := victim.NewAES128(key, a.Seed+3)
	if err != nil {
		return nil, err
	}
	pt := []byte("plundervolt--aes")
	c := p.Core(a.VictimCore)

	// Phase 1: deepen the offset until encryptions start faulting.
	workingOffset := 0
	for off := a.StartMV; off >= a.FloorMV && workingOffset == 0; off += a.StepMV {
		if !writeOffset(env, r, tel, a.VictimCore, off) {
			continue
		}
		p.Sim.RunFor(600 * sim.Microsecond)
		faulted := 0
		for b := 0; b < a.BlocksPerStep; b++ {
			r.Attempts++
			_, round, err := aes.EncryptOn(c, pt)
			if err != nil {
				if errors.Is(err, cpu.ErrCrashed) {
					r.Crashes++
					tel.crash(r, off)
					p.Reboot()
					r.Notes = "crashed before harvesting enough pairs"
					return r, nil
				}
				return nil, err
			}
			if round >= 0 {
				faulted++
				r.FaultsObserved++
			}
		}
		tel.fault(r, faulted, off)
		p.Sim.RunFor(a.DwellPerBatch)
		// Want a workable rate: ~1e-3 faulted blocks makes round-9 pairs
		// land about once per 10k encryptions while the control path still
		// has ~2.7 sigma more slack than the AES path (low crash risk).
		if faulted >= a.BlocksPerStep/1000 {
			workingOffset = off
		}
	}
	if workingOffset == 0 {
		r.Notes = "no offset produced AES faults (defense held)"
		return r, nil
	}

	// Phase 2: harvest round-9 pairs and run the DFA.
	pairs, err := aes.CollectRound9Pairs(c, pt, a.PairsWanted, a.CollectBudget)
	r.Attempts += a.CollectBudget // upper bound; exact count not surfaced
	if err != nil {
		if errors.Is(err, cpu.ErrCrashed) {
			r.Crashes++
			tel.crash(r, workingOffset)
			p.Reboot()
			r.Notes = "crashed during pair harvest"
			return r, nil
		}
		r.Notes = fmt.Sprintf("harvest fell short: %v", err)
		return r, nil
	}
	r.FaultsObserved += len(pairs)
	tel.fault(r, len(pairs), workingOffset)
	recovered, err := victim.DFARecoverMasterKey(pairs, pt, 0)
	if err != nil {
		r.Notes = fmt.Sprintf("DFA failed: %v", err)
		return r, nil
	}
	if bytes.Equal(recovered[:], key) {
		r.KeyRecovered = true
		r.Succeeded = true
		r.Notes = fmt.Sprintf("AES-128 key recovered by DFA at offset %d mV from %d round-9 pairs",
			workingOffset, len(pairs))
	} else {
		r.Notes = "DFA produced a wrong key (model anomaly)"
	}
	return r, nil
}
