package attack

import (
	"strings"
	"testing"

	"plugvolt/internal/core"
	"plugvolt/internal/defense"
)

func TestMatrixRunsEveryCellOnFreshMachines(t *testing.T) {
	newEnv := func() (*defense.Env, error) {
		return newEnvNoT("skylake", 71)
	}
	defenses := []DefenseFactory{
		{Name: "none", Build: func(*defense.Env) (defense.Countermeasure, error) {
			return defense.None{}, nil
		}},
		{Name: "polling", Build: func(env *defense.Env) (defense.Countermeasure, error) {
			cfg := core.DefaultCharacterizerConfig()
			cfg.Iterations = 200_000
			cfg.OffsetStartMV = -5
			cfg.OffsetStepMV = -5
			cfg.OffsetEndMV = -350
			ch, err := core.NewCharacterizer(env.Platform, cfg)
			if err != nil {
				return nil, err
			}
			g, err := ch.Run()
			if err != nil {
				return nil, err
			}
			return defense.NewPolling(g.UnsafeSet(), env.Platform.Spec.BusMHz, core.DefaultGuardConfig())
		}},
	}
	attacks := []AttackFactory{
		{Name: "v0ltpwn", Build: func() Attack { return DefaultV0LTpwn() }},
		{Name: "voltpillager", Build: func() Attack { return DefaultVoltPillager() }},
	}
	results, err := Matrix(newEnv, defenses, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("cells %d", len(results))
	}
	// Undefended: both succeed. Polling: stops v0ltpwn, not the hardware
	// injector.
	byKey := map[string]*Result{}
	for _, r := range results {
		byKey[r.Attack+"|"+r.Defense] = r
	}
	if !byKey["v0ltpwn|none"].Succeeded || !byKey["voltpillager|none"].Succeeded {
		t.Fatalf("undefended cells failed: %v", results)
	}
	if byKey["v0ltpwn|polling (this work)"].Succeeded {
		t.Fatal("polling lost to v0ltpwn")
	}
	if !byKey["voltpillager|polling (this work)"].Succeeded {
		t.Fatal("polling magically stopped the hardware injector")
	}
	sum := Summary(results)
	if sum["none"].Succeeded != 2 || sum["polling (this work)"].Succeeded != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	data, err := ResultsJSON(results)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "voltpillager") {
		t.Fatal("JSON missing results")
	}
}

func TestMatrixValidation(t *testing.T) {
	ok := func() (*defense.Env, error) { return newEnvNoT("skylake", 1) }
	df := []DefenseFactory{{Name: "none", Build: func(*defense.Env) (defense.Countermeasure, error) { return defense.None{}, nil }}}
	af := []AttackFactory{{Name: "x", Build: func() Attack { return DefaultV0LTpwn() }}}
	if _, err := Matrix(nil, df, af); err == nil {
		t.Fatal("nil env factory accepted")
	}
	if _, err := Matrix(ok, nil, af); err == nil {
		t.Fatal("no defenses accepted")
	}
	if _, err := Matrix(ok, df, nil); err == nil {
		t.Fatal("no attacks accepted")
	}
}
